"""Unit tests for repro.core.transition."""

import pytest

from repro.core import (
    Configuration,
    Transition,
    displacement_of_word,
    from_counts,
    pairwise,
    word_width,
)


class TestConstruction:
    def test_pairwise_builds_width_two_transition(self):
        transition = pairwise(("a", "b"), ("c", "d"))
        assert transition.pre == from_counts(a=1, b=1)
        assert transition.post == from_counts(c=1, d=1)
        assert transition.width == 2

    def test_accepts_plain_mappings(self):
        transition = Transition({"a": 2}, {"b": 1})
        assert transition.pre == from_counts(a=2)
        assert transition.post == from_counts(b=1)

    def test_name_is_optional(self):
        assert Transition({"a": 1}, {"b": 1}).name is None
        assert Transition({"a": 1}, {"b": 1}, name="t").name == "t"


class TestMeasures:
    def test_width_is_max_of_sizes(self):
        transition = Transition({"a": 3}, {"b": 1})
        assert transition.width == 3

    def test_max_value_is_infinity_norm(self):
        transition = Transition({"a": 3}, {"b": 5})
        assert transition.max_value == 5

    def test_conservative_transition(self):
        assert pairwise(("a", "b"), ("c", "d")).is_conservative()
        assert not Transition({"a": 1}, {"b": 2}).is_conservative()

    def test_states_union_of_pre_and_post(self):
        transition = Transition({"a": 1}, {"b": 1})
        assert transition.states == frozenset({"a", "b"})

    def test_displacement(self):
        transition = Transition({"a": 2, "b": 1}, {"b": 3, "c": 1})
        assert transition.displacement() == {"a": -2, "b": 2, "c": 1}

    def test_displacement_omits_zero_entries(self):
        transition = pairwise(("a", "b"), ("a", "c"))
        assert "a" not in transition.displacement()


class TestFiring:
    def test_enabled_when_pre_is_covered(self):
        transition = pairwise(("i", "i"), ("p", "p"))
        assert transition.is_enabled(from_counts(i=2))
        assert transition.is_enabled(from_counts(i=3, p=1))
        assert not transition.is_enabled(from_counts(i=1))

    def test_fire_replaces_pre_by_post(self):
        transition = pairwise(("i", "i"), ("p", "p"))
        assert transition.fire(from_counts(i=3)) == from_counts(i=1, p=2)

    def test_fire_preserves_context(self):
        transition = pairwise(("i", "i"), ("p", "p"))
        result = transition.fire(from_counts(i=2, q=5))
        assert result == from_counts(p=2, q=5)

    def test_fire_disabled_raises(self):
        transition = pairwise(("i", "i"), ("p", "p"))
        with pytest.raises(ValueError):
            transition.fire(from_counts(i=1))

    def test_fire_if_enabled_returns_none_when_disabled(self):
        transition = pairwise(("i", "i"), ("p", "p"))
        assert transition.fire_if_enabled(from_counts(i=1)) is None

    def test_non_conservative_firing(self):
        spawn = Transition({"a": 1}, {"a": 1, "b": 2})
        assert spawn.fire(from_counts(a=1)) == from_counts(a=1, b=2)

    def test_reverse_transition_undoes_firing(self):
        transition = pairwise(("i", "i"), ("p", "q"))
        start = from_counts(i=2, x=1)
        assert transition.reverse().fire(transition.fire(start)) == start


class TestRestriction:
    def test_restriction_projects_pre_and_post(self):
        transition = Transition({"a": 1, "b": 1}, {"c": 2})
        restricted = transition.restrict(["a", "c"])
        assert restricted.pre == from_counts(a=1)
        assert restricted.post == from_counts(c=2)

    def test_restriction_commutes_with_firing_on_restricted_states(self):
        transition = pairwise(("a", "b"), ("c", "d"))
        configuration = from_counts(a=1, b=1, x=2)
        full = transition.fire(configuration)
        restricted = transition.restrict(["a", "c"]).fire(configuration.restrict(["a", "c"]))
        assert full.restrict(["a", "c"]) == restricted


class TestWords:
    def test_displacement_of_word_sums_displacements(self):
        t1 = Transition({"a": 1}, {"b": 1})
        t2 = Transition({"b": 1}, {"c": 1})
        assert displacement_of_word([t1, t2]) == {"a": -1, "c": 1}

    def test_displacement_of_empty_word_is_zero(self):
        assert displacement_of_word([]) == {}

    def test_word_width(self):
        t1 = Transition({"a": 1}, {"b": 1})
        t2 = Transition({"a": 3}, {"b": 3})
        assert word_width([t1, t2]) == 3
        assert word_width([]) == 0


class TestEquality:
    def test_equality_ignores_name(self):
        assert Transition({"a": 1}, {"b": 1}, name="x") == Transition({"a": 1}, {"b": 1}, name="y")

    def test_hashable(self):
        transitions = {Transition({"a": 1}, {"b": 1}), Transition({"a": 1}, {"b": 1})}
        assert len(transitions) == 1
