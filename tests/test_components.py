"""Unit tests for repro.analysis.components (Section 6) and reachability helpers."""

import pytest

from repro.analysis import (
    component_of,
    enumerate_configurations,
    enumerate_configurations_up_to,
    find_bottom_witness,
    is_bottom,
    lemma_6_2_word_bound,
    shortest_distances,
    strongly_connected_components,
    theorem_6_1_bound,
)
from repro.analysis.components import theorem_6_1_bound_log2
from repro.core import PetriNet, Transition, from_counts, pairwise


@pytest.fixture
def swap_net():
    return PetriNet(
        [
            pairwise(("i", "i"), ("p", "p"), name="fwd"),
            pairwise(("p", "p"), ("i", "i"), name="bwd"),
        ]
    )


@pytest.fixture
def one_way_net():
    return PetriNet([pairwise(("i", "i"), ("p", "p"), name="fwd")])


class TestEnumeration:
    def test_enumerate_exact_size(self):
        configurations = list(enumerate_configurations(["a", "b"], 2))
        assert len(configurations) == 3  # (2,0), (1,1), (0,2)
        assert all(c.size == 2 for c in configurations)

    def test_enumerate_up_to(self):
        configurations = list(enumerate_configurations_up_to(["a", "b"], 2))
        assert len(configurations) == 6  # sizes 0,1,2 -> 1+2+3

    def test_enumerate_no_states(self):
        assert list(enumerate_configurations([], 0)) == [from_counts()]
        assert list(enumerate_configurations([], 3)) == []


class TestGraphHelpers:
    def test_shortest_distances(self, swap_net):
        graph = swap_net.reachability_graph([from_counts(i=4)])
        distances = shortest_distances(graph, from_counts(i=4))
        assert distances[from_counts(i=4)] == 0
        assert distances[from_counts(p=4)] == 2

    def test_shortest_distances_missing_root(self, swap_net):
        graph = swap_net.reachability_graph([from_counts(i=2)])
        assert shortest_distances(graph, from_counts(i=100)) == {}

    def test_strongly_connected_components(self, swap_net, one_way_net):
        graph = swap_net.reachability_graph([from_counts(i=2)])
        components = strongly_connected_components(graph)
        assert len(components) == 1

        graph = one_way_net.reachability_graph([from_counts(i=2)])
        components = strongly_connected_components(graph)
        assert len(components) == 2


class TestComponents:
    def test_component_of_reversible_net(self, swap_net):
        component = component_of(swap_net, from_counts(i=2))
        assert component == {from_counts(i=2), from_counts(p=2)}

    def test_component_of_irreversible_net(self, one_way_net):
        assert component_of(one_way_net, from_counts(i=2)) == {from_counts(i=2)}

    def test_is_bottom_for_reversible_net(self, swap_net):
        assert is_bottom(swap_net, from_counts(i=2))

    def test_is_not_bottom_when_an_escape_exists(self, one_way_net):
        assert not is_bottom(one_way_net, from_counts(i=2))
        # The sink configuration is bottom.
        assert is_bottom(one_way_net, from_counts(p=2))

    def test_deadlock_is_bottom(self, one_way_net):
        assert is_bottom(one_way_net, from_counts(i=1))


class TestBottomWitness:
    def test_witness_on_reversible_net(self, swap_net):
        witness = find_bottom_witness(swap_net, from_counts(i=2), max_nodes=1000)
        assert witness is not None
        assert witness.check(swap_net, from_counts(i=2))

    def test_witness_on_irreversible_net(self, one_way_net):
        witness = find_bottom_witness(one_way_net, from_counts(i=3), max_nodes=1000)
        assert witness is not None
        assert witness.check(one_way_net, from_counts(i=3))

    def test_witness_on_growing_net(self):
        # a -> a + b: the bottom part is Q = {a} (the component of a alone),
        # and b can be pumped.
        net = PetriNet([Transition({"a": 1}, {"a": 1, "b": 1}, name="spawn")])
        witness = find_bottom_witness(net, from_counts(a=1), max_nodes=200)
        assert witness is not None
        assert witness.alpha.agrees_on(witness.beta, witness.places)
        outside = set(net.states) - set(witness.places)
        for state in outside:
            assert witness.alpha[state] < witness.beta[state]

    def test_witness_sizes_below_theorem_bound(self, swap_net):
        witness = find_bottom_witness(swap_net, from_counts(i=2), max_nodes=1000)
        bound = theorem_6_1_bound(swap_net, from_counts(i=2))
        assert len(witness.sigma) <= bound
        assert len(witness.pump) <= bound
        assert witness.component_size <= bound


class TestBounds:
    def test_theorem_bound_positive_and_monotone(self, swap_net):
        small = theorem_6_1_bound(swap_net, from_counts(i=1))
        large = theorem_6_1_bound(swap_net, from_counts(i=5))
        assert 1 <= small <= large

    def test_log_bound_matches_exact_bound_for_small_nets(self, swap_net):
        import math

        exact = theorem_6_1_bound(swap_net, from_counts(i=1))
        approx = theorem_6_1_bound_log2(swap_net, from_counts(i=1))
        assert math.isclose(math.log2(exact), approx, rel_tol=1e-9)

    def test_empty_net_bound(self):
        assert theorem_6_1_bound(PetriNet(), from_counts()) == 1
        assert theorem_6_1_bound_log2(PetriNet(), from_counts()) == 0.0

    def test_lemma_6_2_word_bound(self, swap_net):
        bound = lemma_6_2_word_bound(swap_net, from_counts(i=2), component_size=2, remaining_places=1)
        assert bound >= 1
        assert lemma_6_2_word_bound(swap_net, from_counts(i=2), 3, 0) == 3
