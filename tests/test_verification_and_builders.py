"""Unit tests for repro.analysis.verification and repro.protocols.builders."""

import pytest

from repro.analysis import check_protocol, find_counterexample, verify_input
from repro.core import (
    OUTPUT_ONE,
    OUTPUT_UNDEFINED,
    OUTPUT_ZERO,
    Configuration,
    counting,
    from_counts,
)
from repro.protocols import ProtocolBuilder, flock_of_birds_predicate, flock_of_birds_protocol


class TestProtocolBuilder:
    def test_build_minimal_protocol(self):
        builder = ProtocolBuilder(name="two-meet")
        builder.add_rule(("i", "i"), ("p", "p"))
        builder.add_rule(("p", "i"), ("p", "p"))
        builder.set_initial_states(["i"])
        builder.set_output("i", OUTPUT_ZERO)
        builder.set_output("p", OUTPUT_ONE)
        protocol = builder.build()
        assert protocol.num_states == 2
        assert protocol.width == 2
        report = check_protocol(protocol, counting("i", 2), max_agents=4)
        assert report.all_correct

    def test_missing_initial_states_rejected(self):
        builder = ProtocolBuilder()
        builder.add_rule(("a", "a"), ("b", "b"))
        builder.set_default_output(OUTPUT_ZERO)
        with pytest.raises(ValueError):
            builder.build()

    def test_missing_outputs_rejected(self):
        builder = ProtocolBuilder()
        builder.add_rule(("a", "a"), ("b", "b"))
        builder.set_initial_states(["a"])
        builder.set_output("a", OUTPUT_ZERO)
        with pytest.raises(ValueError):
            builder.build()

    def test_default_output_fills_gaps(self):
        builder = ProtocolBuilder()
        builder.add_rule(("a", "a"), ("b", "b"))
        builder.set_initial_states(["a"])
        builder.set_output("b", OUTPUT_ONE)
        builder.set_default_output(OUTPUT_ZERO)
        protocol = builder.build()
        assert protocol.output["a"] == OUTPUT_ZERO
        assert protocol.output["b"] == OUTPUT_ONE

    def test_leaders_and_wide_transitions(self):
        builder = ProtocolBuilder(name="wide")
        builder.add_transition({"i": 3}, {"p": 3}, name="triple")
        builder.set_leaders({"L": 2})
        builder.set_initial_states(["i"])
        builder.set_outputs({"i": OUTPUT_ZERO, "p": OUTPUT_ONE, "L": OUTPUT_UNDEFINED})
        protocol = builder.build()
        assert protocol.width == 3
        assert protocol.num_leaders == 2
        assert protocol.num_states == 3

    def test_add_state_and_states(self):
        builder = ProtocolBuilder()
        builder.add_state("x", OUTPUT_ZERO)
        builder.add_states(["y", "z"])
        builder.add_rule(("x", "x"), ("y", "z"))
        builder.set_initial_states(["x"])
        builder.set_default_output(OUTPUT_ZERO)
        protocol = builder.build()
        assert protocol.num_states == 3


class TestVerification:
    def test_verify_input_reports_exploration_size(self):
        protocol = flock_of_birds_protocol(2)
        verdict = verify_input(protocol, from_counts(**{}), expected=0)
        assert verdict.correct
        assert verdict.explored >= 1

    def test_verify_input_detects_wrong_expectation(self):
        protocol = flock_of_birds_protocol(2)
        verdict = verify_input(protocol, protocol.counting_input(3), expected=0)
        assert not verdict.correct
        assert verdict.computed == 1

    def test_check_protocol_with_explicit_inputs(self):
        protocol = flock_of_birds_protocol(3)
        inputs = [protocol.counting_input(k) for k in (1, 3, 5)]
        report = check_protocol(
            protocol, flock_of_birds_predicate(3), max_agents=0, inputs=inputs
        )
        assert report.num_inputs == 3
        assert report.all_correct

    def test_report_summary_mentions_failures(self):
        protocol = flock_of_birds_protocol(2)
        # Deliberately check against the wrong predicate to exercise failures.
        report = check_protocol(protocol, counting(1, 3), max_agents=3)
        assert report.num_failures > 0
        assert "FAIL" in report.summary()
        assert len(report.failures()) == report.num_failures

    def test_find_counterexample_returns_first_failure(self):
        protocol = flock_of_birds_protocol(2)
        counterexample = find_counterexample(protocol, counting(1, 3), max_agents=4)
        assert counterexample is not None
        assert not counterexample.correct

    def test_find_counterexample_none_for_correct_protocol(self):
        protocol = flock_of_birds_protocol(2)
        assert (
            find_counterexample(protocol, flock_of_birds_predicate(2), max_agents=4) is None
        )

    def test_verification_requires_petri_net_protocol(self):
        from repro.core import Protocol, RelationPreorder, zero

        protocol = Protocol(
            states=["i"],
            preorder=RelationPreorder(lambda a, b: a == b),
            leaders=zero(),
            initial_states=["i"],
            output={"i": OUTPUT_ZERO},
        )
        with pytest.raises(ValueError):
            verify_input(protocol, from_counts(i=1), expected=0)
