"""Unit tests for repro.analysis.state_complexity and ackermann (Theorem 4.3, Corollary 4.4)."""

import math

import pytest

from repro.analysis import (
    ackermann,
    ackermann_level,
    bej_leaderless_upper_bound,
    bej_upper_bound_with_leaders,
    corollary_4_4_lower_bound,
    czerner_esparza_lower_bound,
    inverse_ackermann,
    max_threshold_for_states,
    max_threshold_for_states_log2_log2,
    min_states_for_threshold,
    section_8_constants,
    section_8_constants_log2,
    theorem_4_3_admits_threshold,
    theorem_4_3_bound,
    theorem_4_3_bound_for_protocol,
    theorem_4_3_holds_for_protocol,
    theorem_4_3_log2_log2_bound,
)
from repro.protocols import example_4_2_protocol, flock_of_birds_protocol


class TestTheorem43:
    def test_bound_formula(self):
        # |P| = 1, width = 1, leaders = 0: (4 + 4)^(1^9) = 8.
        assert theorem_4_3_bound(1, 1, 0) == 8
        # |P| = 2, width = 2, leaders = 0: (4 + 8)^(2^16).
        assert theorem_4_3_bound(2, 2, 0) == 12 ** (2 ** 16)

    def test_log_bound_matches_exact_for_small_states(self):
        exact = theorem_4_3_bound(2, 2, 1)
        approx = theorem_4_3_log2_log2_bound(2, 2, 1)
        assert math.isclose(math.log2(math.log2(exact)), approx, rel_tol=1e-9)

    def test_log_bound_monotone_in_every_parameter(self):
        base = theorem_4_3_log2_log2_bound(3, 2, 1)
        assert theorem_4_3_log2_log2_bound(4, 2, 1) > base
        assert theorem_4_3_log2_log2_bound(3, 3, 1) > base
        assert theorem_4_3_log2_log2_bound(3, 2, 2) > base

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            theorem_4_3_bound(0, 1, 1)
        with pytest.raises(ValueError):
            theorem_4_3_bound(1, -1, 0)
        with pytest.raises(ValueError):
            theorem_4_3_admits_threshold(0, 1, 1, 0)

    def test_bound_for_protocol_object(self):
        # Example 4.1 has only two states, so the exact bound is computable.
        from repro.protocols import example_4_1_protocol

        protocol = example_4_1_protocol(3)
        bound = theorem_4_3_bound_for_protocol(protocol)
        assert bound == theorem_4_3_bound(2, 3, 0)

    def test_theorem_holds_on_the_verified_constructions(self):
        # Every construction that stably computes (x >= n) must satisfy the
        # Theorem 4.3 inequality.  This is the paper's main claim checked on
        # real protocols (on the log-log scale, since the bound is huge).
        for n in (1, 2, 3, 4, 5, 100, 10 ** 6):
            flock = flock_of_birds_protocol(min(n, 6))
            assert theorem_4_3_holds_for_protocol(flock, min(n, 6))
            example = example_4_2_protocol(n)
            assert theorem_4_3_holds_for_protocol(example, n)

    def test_admits_threshold_rejects_huge_thresholds_for_tiny_protocols(self):
        # A 1-state width-1 leaderless protocol can only decide n <= 8.
        assert theorem_4_3_admits_threshold(8, 1, 1, 0)
        assert not theorem_4_3_admits_threshold(10 ** 9, 1, 1, 0)

    def test_max_threshold_and_min_states_are_inverse(self):
        for threshold in (2, 100, 10 ** 6, 2 ** 70):
            states = min_states_for_threshold(threshold, 2)
            log_target = math.log2(threshold.bit_length() - 1) if threshold > 2 else 0.0
            assert max_threshold_for_states_log2_log2(states, 2) >= log_target
            if states > 1:
                assert max_threshold_for_states_log2_log2(states - 1, 2) < log_target

    def test_max_threshold_exact_matches_log_for_small_states(self):
        exact = max_threshold_for_states(2, 2)
        approx = max_threshold_for_states_log2_log2(2, 2)
        assert math.isclose(math.log2(math.log2(exact)), approx, rel_tol=1e-9)

    def test_invalid_bound_parameter(self):
        with pytest.raises(ValueError):
            max_threshold_for_states(1, 0)
        with pytest.raises(ValueError):
            min_states_for_threshold(0, 1)


class TestCorollary44:
    def test_lower_bound_grows_with_n(self):
        small = corollary_4_4_lower_bound(2 ** (2 ** 4), 2, 0.49)
        large = corollary_4_4_lower_bound(2 ** (2 ** 8), 2, 0.49)
        assert large > small

    def test_h_must_be_below_one_half(self):
        with pytest.raises(ValueError):
            corollary_4_4_lower_bound(100, 2, 0.5)
        with pytest.raises(ValueError):
            corollary_4_4_lower_bound(100, 2, 0.0)

    def test_small_n_gives_zero(self):
        assert corollary_4_4_lower_bound(2, 2, 0.4) == 0.0

    def test_lower_bound_below_upper_bound(self):
        # Consistency: the lower bound can never exceed the BEJ upper bound
        # (up to the additive constant) on the family where both apply.
        for j in (3, 5, 8, 12):
            n = 2 ** (2 ** j)
            lower = corollary_4_4_lower_bound(n, 2, 0.49)
            upper = bej_upper_bound_with_leaders(n, constant=4.0)
            assert lower <= upper

    def test_lower_bound_consistent_with_theorem(self):
        # Corollary 4.4 is derived from Theorem 4.3: a protocol with fewer
        # states than the lower bound would contradict the theorem.
        n = 2 ** (2 ** 6)
        lower = corollary_4_4_lower_bound(n, 2, 0.3)
        states = min_states_for_threshold(n, 2)
        assert states >= lower

    def test_theorem_rejects_protocols_below_the_lower_bound(self):
        # For a huge threshold, a protocol with fewer states than Corollary 4.4
        # prescribes cannot satisfy the Theorem 4.3 inequality.
        n = 2 ** (2 ** 10)
        lower = corollary_4_4_lower_bound(n, 2, 0.49)
        too_few = max(int(lower) - 2, 1)
        assert not theorem_4_3_admits_threshold(n, too_few, 2, 2)


class TestUpperBounds:
    def test_bej_with_leaders_is_loglog(self):
        assert bej_upper_bound_with_leaders(2 ** (2 ** 5)) == pytest.approx(5.0)

    def test_bej_leaderless_is_log(self):
        assert bej_leaderless_upper_bound(2 ** 10) == pytest.approx(10.0)

    def test_small_n_edge_cases(self):
        assert bej_upper_bound_with_leaders(2) == 1.0
        assert bej_leaderless_upper_bound(1) == 1.0


class TestSection8Constants:
    def test_constants_for_d2(self):
        constants = section_8_constants(2, 1, 1)
        assert constants.b == (4 + 4 + 2) ** (1 * (1 + 3 ** 2))
        assert constants.h == 2 * 2 * constants.b
        assert constants.threshold_bound == constants.h ** (5 * 4 + 4 + 4)

    def test_d1_rejected(self):
        with pytest.raises(ValueError):
            section_8_constants(1, 1, 0)

    def test_threshold_bound_below_coarse_bound(self):
        # The paper coarsens h^{5d^2+2d+4} into (4+4||T||+2||rho_L||)^{d(d+2)^2}.
        constants = section_8_constants(2, 1, 1)
        assert constants.threshold_bound <= constants.coarse_bound

    def test_log_variant_matches_exact_for_small_d(self):
        constants = section_8_constants(2, 1, 1)
        logs = section_8_constants_log2(2, 1, 1)
        assert math.isclose(logs["b"], math.log2(constants.b), rel_tol=1e-9)
        assert math.isclose(logs["h"], math.log2(constants.h), rel_tol=1e-9)
        assert math.isclose(
            logs["threshold_bound"], math.log2(constants.threshold_bound), rel_tol=1e-9
        )

    def test_log_variant_handles_large_d(self):
        logs = section_8_constants_log2(8, 2, 2)
        assert logs["b"] > 0
        assert logs["threshold_bound"] > logs["b"]


class TestAckermann:
    def test_hierarchy_base_level(self):
        assert ackermann_level(1, 5) == 10

    def test_hierarchy_level_two_is_exponential(self):
        # A_2(x) = A_1^x(1) = 2^x.
        assert ackermann_level(2, 5) == 32

    def test_hierarchy_level_three_is_a_tower(self):
        # A_3(3) = A_2(A_2(A_2(1))) = 2^(2^2) = 16.
        assert ackermann_level(3, 3) == 16

    def test_diagonal_values(self):
        assert ackermann(0) == 1
        assert ackermann(1) == 2
        assert ackermann(2) == 4
        assert ackermann(3) == 16

    def test_ceiling_caps_computation(self):
        assert ackermann_level(3, 10, ceiling=1000) == 1000

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ackermann_level(0, 1)
        with pytest.raises(ValueError):
            ackermann(-1)

    def test_inverse_ackermann(self):
        assert inverse_ackermann(0) == 0
        assert inverse_ackermann(1) == 0  # A(1) = 2 > 1
        assert inverse_ackermann(2) == 1
        assert inverse_ackermann(15) == 2
        assert inverse_ackermann(16) == 3
        assert inverse_ackermann(10 ** 9) == 3

    def test_inverse_is_left_inverse(self):
        for x in range(4):
            assert inverse_ackermann(ackermann(x)) >= x

    def test_czerner_esparza_bound_is_tiny(self):
        # The point of experiment E3: the PODC'21 bound is <= 3 for every
        # physically meaningful n, unlike the paper's (log log n)^h bound.
        assert czerner_esparza_lower_bound(10 ** 18) <= 3
