"""Tests for the trajectory-analytics subsystem (repro.analytics).

Covers the four layers end to end: per-run metric extraction (including the
block-skip replay against a naive per-step reference), ensemble aggregation,
trajectory diffing, the batch-layer ``analytics=`` knob (in-worker
extraction, serial/process bit-identity, compact payloads), the sweep
integration (accuracy + analytics columns, byte-stable stores) and the
``python -m repro.analytics`` CLI.
"""

import pickle

import pytest

from repro.analytics import (
    AnalyticsSpec,
    EnsembleAnalytics,
    aggregate_run_metrics,
    describe_diff,
    diff_results,
    diff_trajectories,
    extract_run_metrics,
    firing_histogram,
    pooled_histogram,
    quantile,
    top_transitions,
)
from repro.analytics.metrics import (
    _consensus_of,
    _initial_counters,
    _replay_tables,
)
from repro.analytics.report import main as analytics_main
from repro.core import Configuration
from repro.simulation import BatchRunner, Simulator, run_ensemble
from repro.simulation.trajectory import Trajectory
from repro.simulation.vectorized import numpy_available
from repro.sweep import (
    MemoryResultStore,
    SweepRunner,
    SweepSpec,
    build_predicate_for,
    build_protocol_and_inputs,
    open_store,
)


def _majority(population=13):
    return build_protocol_and_inputs("majority", population, {})


def _recorded_run(protocol, inputs, seed=2022, max_steps=400, window=80,
                  engine="auto", capacity=None):
    simulator = Simulator(protocol, seed=seed, engine=engine)
    return simulator.run(
        inputs, max_steps=max_steps, stability_window=window,
        record_trajectory=True,
        trajectory_capacity=capacity or max_steps,
    )


def _naive_first_consensus(result, protocol):
    """Per-step reference implementation the block-skip replay must match."""
    class_of, deltas, _ = _replay_tables(protocol)
    one, zero, undef = _initial_counters(result.initial, class_of)
    if _consensus_of(one, zero, undef) is not None:
        return 0
    for step, index in enumerate(result.trajectory.transition_indices, start=1):
        d_one, d_zero, d_undef = deltas[index]
        one += d_one
        zero += d_zero
        undef += d_undef
        if _consensus_of(one, zero, undef) is not None:
            return step
    return None


class TestAnalyticsSpec:
    def test_defaults_are_picklable_and_hashable(self):
        spec = AnalyticsSpec(expected_output=1)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(AnalyticsSpec(expected_output=1))

    def test_checkpoint_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            AnalyticsSpec(curve_checkpoints=(-1,))
        with pytest.raises(ValueError, match="sorted"):
            AnalyticsSpec(curve_checkpoints=(10, 5))
        with pytest.raises(ValueError, match="duplicate"):
            AnalyticsSpec(curve_checkpoints=(5, 5))
        with pytest.raises(ValueError, match="integers"):
            AnalyticsSpec(curve_checkpoints=(1.5,))
        with pytest.raises(ValueError, match="integers"):
            AnalyticsSpec(curve_checkpoints=(True,))

    def test_expected_output_validation(self):
        with pytest.raises(ValueError, match="expected_output"):
            AnalyticsSpec(expected_output=2)


class TestExtractRunMetrics:
    def test_requires_a_recorded_trajectory(self):
        protocol, inputs = _majority()
        result = Simulator(protocol, seed=1).run(inputs, max_steps=50)
        with pytest.raises(ValueError, match="no recorded trajectory"):
            extract_run_metrics(result, protocol)

    def test_metric_dict_shape_and_consistency(self):
        protocol, inputs = _majority()
        result = _recorded_run(protocol, inputs)
        metrics = extract_run_metrics(
            result, protocol, AnalyticsSpec(expected_output=1)
        )
        assert metrics["steps"] == result.steps
        assert metrics["consensus"] == result.consensus
        assert metrics["time_to_stable_consensus"] == result.consensus_step
        assert metrics["correct"] is (result.consensus == 1)
        assert metrics["trajectory_complete"] is True
        assert sum(metrics["histogram"]) == result.steps
        assert metrics["curve"] is None  # no checkpoints requested
        first = metrics["time_to_first_consensus"]
        assert first is not None and first <= metrics["time_to_stable_consensus"]

    @pytest.mark.parametrize(
        "case",
        [
            ("majority", {}, 13, 400),
            ("majority", {}, 40, 3000),
            ("majority", {}, 200, 2000),  # budget-exhausted, no consensus
            ("modulo", {"modulus": 3, "remainder": 1}, 11, 400),
            ("succinct", {"threshold": 4}, 9, 500),
            ("flock", {"threshold": 5}, 12, 400),
        ],
        ids=lambda case: f"{case[0]}-{case[2]}",
    )
    def test_block_skip_replay_matches_naive_scan(self, case):
        # The fast replay (bulk Counter skips + exact tails) must agree with
        # the obvious per-step loop on every protocol shape — converged,
        # unconverged, with and without '*'-output states.
        name, params, population, budget = case
        protocol, inputs = build_protocol_and_inputs(name, population, params)
        for seed in range(5):
            result = _recorded_run(
                protocol, inputs, seed=seed, max_steps=budget, window=60
            )
            metrics = extract_run_metrics(result, protocol, AnalyticsSpec())
            assert metrics["time_to_first_consensus"] == _naive_first_consensus(
                result, protocol
            )
            assert metrics["histogram"] == firing_histogram(
                result.trajectory, protocol.petri_net.num_transitions
            )

    def test_zero_step_terminal_run(self):
        # A single agent enables no width-2 transition: the run terminates at
        # step 0 with an immediate consensus and an all-zero histogram.
        protocol, _ = _majority()
        from repro.protocols.majority import STATE_A

        inputs = Configuration({STATE_A: 1})
        result = _recorded_run(protocol, inputs, max_steps=100)
        metrics = extract_run_metrics(
            result, protocol, AnalyticsSpec(curve_checkpoints=(0, 10))
        )
        assert metrics["steps"] == 0
        assert metrics["histogram"] == (0, 0, 0, 0)
        assert metrics["time_to_first_consensus"] == 0
        assert metrics["time_to_stable_consensus"] == 0
        assert metrics["curve"] == ((0, 1.0), (10, 1.0))

    def test_single_output_class_protocol_still_counts_firings(self):
        # Every state outputs 1, so no transition ever moves the consensus
        # counters (max_delta == 0) and the replay can skip the whole scan —
        # but the histogram must still count every firing, and the run is in
        # consensus from step 0.
        from repro.core.petrinet import PetriNet
        from repro.core.protocol import Protocol
        from repro.core.transition import Transition

        net = PetriNet([
            Transition({"x": 2}, {"x": 1, "y": 1}, name="shed"),
            Transition({"y": 2}, {"x": 1, "y": 1}, name="mix"),
        ])
        protocol = Protocol.from_petri_net(
            net, leaders=Configuration({}), initial_states=["x"],
            output={"x": 1, "y": 1}, name="all-ones",
        )
        inputs = Configuration({"x": 10})
        result = _recorded_run(protocol, inputs, seed=3, max_steps=60, window=500)
        assert result.steps > 0
        metrics = extract_run_metrics(
            result, protocol, AnalyticsSpec(expected_output=1)
        )
        assert sum(metrics["histogram"]) == result.steps
        assert metrics["histogram"] == firing_histogram(
            result.trajectory, net.num_transitions
        )
        assert metrics["time_to_first_consensus"] == 0
        assert metrics["correct"] is True

    def test_truncated_trajectory_degrades_gracefully(self):
        protocol, inputs = _majority()
        result = _recorded_run(protocol, inputs, capacity=5)
        assert result.trajectory.dropped > 0
        metrics = extract_run_metrics(result, protocol, AnalyticsSpec())
        assert metrics["trajectory_complete"] is False
        assert metrics["time_to_first_consensus"] is None
        assert metrics["curve"] is None
        # The histogram covers the surviving suffix only.
        assert sum(metrics["histogram"]) == 5

    def test_curve_checkpoints_beyond_run_length_sample_the_end(self):
        protocol, inputs = _majority()
        result = _recorded_run(protocol, inputs)
        metrics = extract_run_metrics(
            result, protocol,
            AnalyticsSpec(curve_checkpoints=(0, result.steps, 99999)),
        )
        curve = dict(metrics["curve"])
        assert curve[result.steps] == 1.0  # converged: everyone agrees
        assert curve[99999] == 1.0
        assert 0.0 < curve[0] < 1.0

    def test_unconverged_run_has_no_curve(self):
        protocol, inputs = _majority(200)
        result = _recorded_run(protocol, inputs, max_steps=500)
        assert result.consensus is None
        metrics = extract_run_metrics(
            result, protocol, AnalyticsSpec(curve_checkpoints=(0, 100))
        )
        assert metrics["curve"] is None
        assert metrics["time_to_first_consensus"] is None

    def test_histogram_rejects_bad_sizes(self):
        protocol, inputs = _majority()
        result = _recorded_run(protocol, inputs)
        with pytest.raises(ValueError, match="at least 1"):
            firing_histogram(result.trajectory, 0)
        with pytest.raises(ValueError, match="outside"):
            firing_histogram(result.trajectory, 2)

    @pytest.mark.parametrize("engine", ["reference", "compiled", "numpy"])
    def test_engines_extract_identical_metrics(self, engine):
        if engine == "numpy" and not numpy_available():
            pytest.skip("NumPy engine requires the optional 'sim' extra")
        protocol, inputs = _majority()
        spec = AnalyticsSpec(curve_checkpoints=(0, 50, 400), expected_output=1)
        reference = extract_run_metrics(
            _recorded_run(protocol, inputs, engine="reference"), protocol, spec
        )
        other = extract_run_metrics(
            _recorded_run(protocol, inputs, engine=engine), protocol, spec
        )
        assert reference == other


class TestBatchAnalytics:
    def test_serial_and_process_metrics_are_identical(self):
        protocol, inputs = _majority(40)
        spec = AnalyticsSpec(expected_output=1)
        seeds = list(range(12))
        serial = run_ensemble(
            protocol, inputs, seeds, backend="serial", max_steps=4000,
            analytics=spec,
        )
        process = run_ensemble(
            protocol, inputs, seeds, backend="process", max_workers=2,
            max_steps=4000, analytics=spec,
        )
        assert [r.analytics for r in serial] == [r.analytics for r in process]
        # Trajectory rings were consumed in the workers, not shipped back.
        assert all(r.trajectory is None for r in serial + process)

    def test_analytics_do_not_perturb_results(self):
        protocol, inputs = _majority(40)
        plain = run_ensemble(
            protocol, inputs, range(8), backend="serial", max_steps=4000
        )
        analysed = run_ensemble(
            protocol, inputs, range(8), backend="serial", max_steps=4000,
            analytics=AnalyticsSpec(),
        )
        assert [
            (r.steps, r.consensus, r.consensus_step, r.terminated, r.final)
            for r in plain
        ] == [
            (r.steps, r.consensus, r.consensus_step, r.terminated, r.final)
            for r in analysed
        ]

    def test_requested_trajectories_survive_analytics_bit_identically(self):
        # record_trajectory=True + analytics: the returned trajectory must be
        # exactly what a plain recorded run with the same capacity returns,
        # including the re-truncation to a small requested capacity.
        protocol, inputs = _majority(13)
        for capacity in (10, 400):
            plain = run_ensemble(
                protocol, inputs, range(4), backend="serial", max_steps=400,
                record_trajectory=True, trajectory_capacity=capacity,
            )
            analysed = run_ensemble(
                protocol, inputs, range(4), backend="serial", max_steps=400,
                record_trajectory=True, trajectory_capacity=capacity,
                analytics=AnalyticsSpec(),
            )
            assert [r.trajectory for r in plain] == [
                r.trajectory for r in analysed
            ]
            assert all(r.analytics is not None for r in analysed)

    def test_batch_runner_run_many_carries_analytics(self):
        protocol, inputs = _majority(13)
        with BatchRunner(protocol, max_workers=2) as runner:
            results = runner.run_many(
                inputs, 8, seed=3, max_steps=400,
                analytics=AnalyticsSpec(expected_output=1),
            )
        assert all(r.analytics is not None and r.trajectory is None
                   for r in results)
        serial = Simulator(protocol, seed=3).run_many(
            inputs, 8, max_steps=400, analytics=AnalyticsSpec(expected_output=1)
        )
        assert [r.analytics for r in results] == [r.analytics for r in serial]

    def test_compact_payload_crosses_the_pool(self):
        protocol, inputs = _majority(40)
        results = run_ensemble(
            protocol, inputs, [1], backend="serial", max_steps=4000,
            analytics=AnalyticsSpec(),
        )
        payload = len(pickle.dumps(results[0]))
        ring = len(pickle.dumps(tuple(range(results[0].steps))))
        assert payload < ring, (
            "the analytics payload should be smaller than the trajectory "
            f"ring it replaces ({payload} >= {ring})"
        )

    def test_invalid_analytics_objects_are_rejected_early(self):
        protocol, inputs = _majority(13)
        with pytest.raises(ValueError, match="extract"):
            run_ensemble(
                protocol, inputs, [1], backend="serial", analytics=object()
            )

        class Unpicklable:
            extract = staticmethod(lambda result, protocol: {})

            def __reduce__(self):
                raise TypeError("deliberately unpicklable")

        # Serial backends never pickle the spec, so this one is fine there...
        run_ensemble(
            protocol, inputs, [], backend="serial", analytics=Unpicklable()
        )
        # ...but the process backend must reject it at the call site.
        with pytest.raises(ValueError, match="picklable analytics"):
            run_ensemble(
                protocol, inputs, [1, 2], backend="process", max_workers=2,
                analytics=Unpicklable(),
            )


class TestQuantile:
    def test_linear_interpolation(self):
        values = [10, 20, 30, 40]
        assert quantile(values, 0.0) == 10
        assert quantile(values, 1.0) == 40
        assert quantile(values, 0.5) == 25.0
        assert quantile(values, 0.25) == pytest.approx(17.5)

    def test_single_value_is_every_quantile(self):
        assert quantile([7], 0.1) == 7 == quantile([7], 0.9)

    def test_empty_and_out_of_range_raise(self):
        with pytest.raises(ValueError, match="empty"):
            quantile([], 0.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            quantile([1], 1.5)


class TestPooledHistogramAndTop:
    def test_pooling_sums_elementwise(self):
        assert pooled_histogram([(1, 2, 0), (0, 3, 5)]) == (1, 5, 5)

    def test_empty_and_mismatched_raise(self):
        with pytest.raises(ValueError, match="empty"):
            pooled_histogram([])
        with pytest.raises(ValueError, match="disagree"):
            pooled_histogram([(1, 2), (1, 2, 3)])

    def test_top_transitions_orders_and_labels(self):
        histogram = (5, 0, 9, 5)
        assert top_transitions(histogram, k=3) == (
            ("2", 9), ("0", 5), ("3", 5)  # ties broken by index
        )
        names = ["a", "b", "c", "d"]
        assert top_transitions(histogram, names, k=1) == (("c", 9),)
        assert top_transitions((0, 0), names, k=2) == ()
        with pytest.raises(ValueError, match="at least 1"):
            top_transitions(histogram, k=0)


class TestAggregateRunMetrics:
    def _metric(self, consensus=1, stable=100, first=50, correct=True,
                histogram=(1, 2), complete=True):
        return {
            "steps": stable if stable is not None else 500,
            "consensus": consensus,
            "time_to_stable_consensus": stable,
            "time_to_first_consensus": first,
            "correct": correct,
            "trajectory_complete": complete,
            "histogram": histogram,
            "curve": None,
        }

    def test_empty_raises_like_summarize_runs(self):
        with pytest.raises(ValueError, match="empty"):
            aggregate_run_metrics([])

    def test_aggregation(self):
        metrics = [
            self._metric(stable=100, first=40),
            self._metric(stable=300, first=60),
            self._metric(consensus=None, stable=None, first=None,
                         correct=False),
        ]
        aggregated = aggregate_run_metrics(metrics, quantile_points=(0.5,))
        assert aggregated.runs == 3
        assert aggregated.converged == 2
        assert aggregated.convergence_rate == pytest.approx(2 / 3)
        # Accuracy counts correct runs over *all* runs.
        assert aggregated.accuracy == pytest.approx(2 / 3)
        assert aggregated.stable_consensus_quantiles == (200.0,)
        assert aggregated.first_consensus_quantiles == (50.0,)
        assert aggregated.histogram == (3, 6)
        assert aggregated.all_complete is True

    def test_accuracy_denominator_counts_only_scored_runs(self):
        # Runs without a correct flag (no expectation was set for them) are
        # excluded from the accuracy denominator, not silently counted as
        # wrong.
        metrics = [
            self._metric(correct=True),
            self._metric(correct=True),
            self._metric(correct=None),
        ]
        assert aggregate_run_metrics(metrics).accuracy == 1.0

    def test_no_convergence_yields_none_quantiles(self):
        aggregated = aggregate_run_metrics(
            [self._metric(consensus=None, stable=None, first=None,
                          correct=None)]
        )
        assert aggregated.stable_consensus_quantiles is None
        assert aggregated.first_consensus_quantiles is None
        assert aggregated.accuracy is None
        assert aggregated.convergence_rate == 0.0

    def test_mean_curve_averages_per_checkpoint(self):
        metrics = [
            dict(self._metric(), curve=((0, 0.5), (10, 1.0))),
            dict(self._metric(), curve=((0, 0.7), (10, 0.8))),
        ]
        aggregated = aggregate_run_metrics(metrics)
        assert aggregated.mean_curve == (
            (0, pytest.approx(0.6)), (10, pytest.approx(0.9))
        )

    def test_invalid_quantile_points_raise(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            aggregate_run_metrics([self._metric()], quantile_points=(2.0,))

    def test_zero_run_rate_on_the_dataclass(self):
        analytics = EnsembleAnalytics(
            runs=0, converged=0, accuracy=None, quantile_points=(),
            stable_consensus_quantiles=None, first_consensus_quantiles=None,
            histogram=None, mean_curve=None, all_complete=True,
        )
        assert analytics.convergence_rate == 0.0


class TestTrajectoryDiff:
    def _trajectory(self, indices):
        return Trajectory(
            transition_indices=tuple(indices),
            total_fired=len(indices),
            capacity=max(len(indices), 1),
        )

    def test_identical(self):
        diff = diff_trajectories(
            self._trajectory([1, 2, 3]), self._trajectory([1, 2, 3])
        )
        assert diff.identical
        assert diff.first_divergence is None
        assert "identical" in describe_diff(diff)

    def test_divergence_is_located(self):
        diff = diff_trajectories(
            self._trajectory([1, 2, 3, 4]), self._trajectory([1, 2, 9, 4])
        )
        assert diff.first_divergence == 2
        assert diff.common_prefix == 2
        assert (diff.fired_a, diff.fired_b) == (3, 9)
        assert not diff.identical
        text = describe_diff(diff, label_a="x", label_b="y")
        assert "step 3" in text and "x fired" in text

    def test_prefix_is_not_a_divergence(self):
        diff = diff_trajectories(
            self._trajectory([1, 2]), self._trajectory([1, 2, 3])
        )
        assert diff.first_divergence is None
        assert not diff.identical
        assert diff.common_prefix == 2
        assert "continued" in describe_diff(diff)

    def test_truncated_trajectories_are_rejected(self):
        truncated = Trajectory(
            transition_indices=(1, 2), total_fired=10, capacity=2
        )
        with pytest.raises(ValueError, match="truncated"):
            diff_trajectories(truncated, self._trajectory([1, 2]))

    def test_diff_results_requires_recordings(self):
        protocol, inputs = _majority()
        bare = Simulator(protocol, seed=1).run(inputs, max_steps=50)
        recorded = _recorded_run(protocol, inputs)
        with pytest.raises(ValueError, match="no recorded trajectory"):
            diff_results(bare, recorded)

    def test_engines_diff_identical_schedulers_diverge(self):
        protocol, inputs = _majority()
        compiled = _recorded_run(protocol, inputs, engine="compiled")
        reference = _recorded_run(protocol, inputs, engine="reference")
        assert diff_results(compiled, reference).identical

        from repro.simulation import TransitionScheduler

        transition = Simulator(
            protocol, scheduler=TransitionScheduler(), seed=2022
        ).run(
            inputs, max_steps=400, stability_window=80,
            record_trajectory=True, trajectory_capacity=400,
        )
        diff = diff_results(compiled, transition)
        assert not diff.identical
        named = describe_diff(diff, net=protocol.petri_net)
        assert "#" in named  # transition names resolved


class TestSweepAnalytics:
    def _spec(self, analytics=True, **overrides):
        options = dict(
            protocols=("majority", ("modulo", {"modulus": 3, "remainder": 1})),
            populations=(12,),
            schedulers=("uniform",),
            engines=("compiled", "reference"),
            repetitions=3,
            master_seed=11,
            max_steps=4000,
            stability_window=200,
            analytics=analytics,
        )
        options.update(overrides)
        return SweepSpec(**options)

    def test_analytics_flag_round_trips_and_validates(self):
        spec = self._spec()
        assert SweepSpec.from_json(spec.to_json()) == spec
        assert SweepSpec.from_json(self._spec(analytics=False).to_json()).analytics is False
        with pytest.raises(ValueError, match="boolean"):
            self._spec(analytics="yes")

    def test_analytics_columns_are_populated_and_engine_identical(self):
        store = MemoryResultStore()
        report = SweepRunner(self._spec(), store, backend="serial").run()
        assert report.complete
        rows = store.rows()
        for row in rows:
            assert row["accuracy"] == 1.0
            assert row["consensus_q50"] is not None
            assert row["consensus_q10"] <= row["consensus_q50"] <= row["consensus_q90"]
            assert ":" in row["top_transitions"]
        # Engine rows of a grid point share seeds: analytics columns agree.
        by_point = {}
        for row in rows:
            key = (row["protocol"], row["params"], row["population"])
            values = (
                row["accuracy"], row["consensus_q10"], row["consensus_q50"],
                row["consensus_q90"], row["top_transitions"],
            )
            by_point.setdefault(key, set()).add(values)
        assert all(len(values) == 1 for values in by_point.values())

    def test_accuracy_is_scored_even_without_analytics(self):
        store = MemoryResultStore()
        SweepRunner(self._spec(analytics=False), store, backend="serial").run()
        for row in store.rows():
            assert row["accuracy"] == 1.0
            # The trajectory-derived columns stay empty without analytics.
            assert row["consensus_q50"] is None
            assert row["top_transitions"] is None

    def test_analytics_store_is_byte_stable_across_backends_and_resume(
        self, tmp_path
    ):
        spec = self._spec()
        straight = tmp_path / "straight.csv"
        SweepRunner(spec, open_store(straight), backend="serial").run()

        process = tmp_path / "process.csv"
        SweepRunner(
            spec, open_store(process), backend="process", max_workers=2
        ).run()
        assert process.read_bytes() == straight.read_bytes()

        resumed = tmp_path / "resumed.csv"
        SweepRunner(spec, open_store(resumed), backend="serial").run(max_cells=2)
        SweepRunner(spec, open_store(resumed), backend="serial").run()
        assert resumed.read_bytes() == straight.read_bytes()

    def test_unregistered_predicate_leaves_accuracy_empty(self):
        from repro.sweep.spec import _PROTOCOL_BUILDERS, register_sweep_protocol
        from repro.protocols.majority import majority_protocol, STATE_A, STATE_B

        def builder(population, params):
            protocol = majority_protocol()
            return protocol, Configuration(
                {STATE_A: population - 1, STATE_B: 1}
            )

        register_sweep_protocol("majority-no-predicate", builder)
        try:
            spec = SweepSpec(
                protocols=("majority-no-predicate",),
                populations=(8,),
                engines=("compiled",),
                repetitions=2,
                master_seed=3,
                max_steps=2000,
                stability_window=100,
                analytics=True,
            )
            store = MemoryResultStore()
            SweepRunner(spec, store, backend="serial").run()
            (row,) = store.rows()
            assert row["accuracy"] is None
            assert row["consensus_q50"] is not None  # analytics still run
        finally:
            _PROTOCOL_BUILDERS.pop("majority-no-predicate")

    def test_store_rejects_malformed_quantiles(self):
        from repro.simulation import summarize_runs

        protocol, inputs = _majority()
        results = Simulator(protocol, seed=1).run_many(inputs, 2, max_steps=400)
        store = MemoryResultStore()
        store.ensure("cell", {"protocol": "majority"}, 1)
        with pytest.raises(ValueError, match="q10, q50, q90"):
            store.mark_done(
                "cell", summarize_runs(results), consensus_quantiles=(1.0,)
            )


class TestExperimentE13:
    def test_reduced_analytics_sweep_cross_checks_engines(self):
        from repro.experiments import registry

        table = registry.run(
            "E13", populations=(12,), repetitions=2, max_steps=4000,
            stability_window=200,
        )
        assert len(table) == 8  # 2 protocols x 1 population x 2 scheds x 2 engines
        assert set(table.column("accuracy")) == {1.0}
        rendered = table.render()
        assert "majority" in rendered and "modulo" in rendered


class TestAnalyticsCli:
    def _store_with_sweep(self, tmp_path, analytics=True):
        spec = SweepSpec(
            protocols=("majority",),
            populations=(12,),
            engines=("compiled",),
            repetitions=2,
            master_seed=5,
            max_steps=2000,
            stability_window=100,
            analytics=analytics,
        )
        path = tmp_path / "results.csv"
        SweepRunner(spec, open_store(path), backend="serial").run()
        return path

    def test_report_renders_analytics_columns(self, tmp_path, capsys):
        path = self._store_with_sweep(tmp_path)
        assert analytics_main(["report", "--store", str(path)]) == 0
        output = capsys.readouterr().out
        assert "accuracy" in output and "consensus_q50" in output
        assert "majority" in output

    def test_report_notes_missing_analytics(self, tmp_path, capsys):
        path = self._store_with_sweep(tmp_path, analytics=False)
        assert analytics_main(["report", "--store", str(path)]) == 0
        assert "analytics" in capsys.readouterr().out

    def test_report_rejects_unknown_store(self, tmp_path, capsys):
        missing = tmp_path / "nope.txt"
        assert analytics_main(["report", "--store", str(missing)]) == 2

    def test_hist_prints_ranked_transitions(self, capsys):
        assert analytics_main([
            "hist", "--protocol", "majority", "--population", "13",
            "--seed", "2022", "--max-steps", "400",
            "--stability-window", "80", "--top", "2",
        ]) == 0
        output = capsys.readouterr().out
        assert "firing histogram" in output
        assert "convert_a" in output

    def test_diff_engines_identical_exit_zero(self, capsys):
        assert analytics_main([
            "diff", "--protocol", "majority", "--population", "13",
            "--seed", "2022", "--engine", "compiled",
            "--vs-engine", "reference", "--max-steps", "400",
            "--stability-window", "80",
        ]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_schedulers_divergent_exit_one(self, capsys):
        assert analytics_main([
            "diff", "--protocol", "majority", "--population", "13",
            "--seed", "2022", "--vs-scheduler", "transition",
            "--max-steps", "400", "--stability-window", "80",
        ]) == 1
        assert "divergence" in capsys.readouterr().out

    def test_bad_params_json_exits_two(self, capsys):
        assert analytics_main([
            "hist", "--protocol", "majority", "--population", "13",
            "--params", "{not json",
        ]) == 2
