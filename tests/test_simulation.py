"""Unit tests for repro.simulation (schedulers, simulator, statistics)."""

import random

import pytest

from repro.core import Configuration, from_counts
from repro.protocols import (
    flock_of_birds_predicate,
    flock_of_birds_protocol,
    majority_predicate,
    majority_protocol,
    succinct_initial_state,
    succinct_leaderless_predicate,
    succinct_leaderless_protocol,
)
from repro.simulation import (
    SimulationResult,
    Simulator,
    TransitionScheduler,
    UniformScheduler,
    accuracy_against_predicate,
    interactions_per_second,
    simulate,
    summarize_runs,
)


class TestSchedulers:
    def test_uniform_scheduler_returns_enabled_transition(self):
        protocol = flock_of_birds_protocol(2)
        net = protocol.petri_net
        scheduler = UniformScheduler()
        rng = random.Random(0)
        configuration = Configuration({1: 3})
        transition = scheduler.choose(net, configuration, rng)
        assert transition is not None
        assert transition.is_enabled(configuration)

    def test_uniform_scheduler_none_when_nothing_enabled(self):
        protocol = flock_of_birds_protocol(3)
        net = protocol.petri_net
        scheduler = UniformScheduler()
        assert scheduler.choose(net, Configuration({0: 2}), random.Random(0)) is None

    def test_transition_scheduler_none_when_nothing_enabled(self):
        protocol = flock_of_birds_protocol(3)
        net = protocol.petri_net
        scheduler = TransitionScheduler()
        assert scheduler.choose(net, Configuration({0: 2}), random.Random(0)) is None

    def test_uniform_weights_prefer_popular_interactions(self):
        # With 10 agents in state 1 and 1 in state 2, the (1, 1) interaction has
        # weight C(10, 2) = 45 versus 10 for (1, 2): it should be picked most
        # of the time.
        protocol = flock_of_birds_protocol(4)
        net = protocol.petri_net
        scheduler = UniformScheduler()
        rng = random.Random(1)
        configuration = Configuration({1: 10, 2: 1})
        picks = [scheduler.choose(net, configuration, rng) for _ in range(200)]
        ones = sum(1 for t in picks if t.pre == Configuration({1: 2}))
        assert ones > 100


class TestSimulator:
    def test_flock_converges_to_one_above_threshold(self):
        protocol = flock_of_birds_protocol(3)
        result = simulate(protocol, protocol.counting_input(5), seed=42, max_steps=20000)
        assert result.consensus == 1

    def test_flock_converges_to_zero_below_threshold(self):
        protocol = flock_of_birds_protocol(4)
        result = simulate(protocol, protocol.counting_input(2), seed=7, max_steps=20000)
        assert result.consensus == 0

    def test_succinct_protocol_converges(self):
        # The succinct protocol keeps a 0-consensus until acceptance, so the
        # stability window must be large enough not to declare convergence
        # before the accepting state has had a chance to appear.
        protocol = succinct_leaderless_protocol(8)
        inputs = Configuration({succinct_initial_state(): 12})
        result = simulate(
            protocol, inputs, seed=3, max_steps=100000, stability_window=5000
        )
        assert result.consensus == 1

    def test_terminal_configuration_detected(self):
        # A single agent below the threshold can never interact.
        protocol = flock_of_birds_protocol(2)
        result = simulate(protocol, protocol.counting_input(1), seed=0)
        assert result.terminated
        assert result.consensus == 0
        assert result.steps == 0

    def test_reproducibility_with_seed(self):
        protocol = majority_protocol()
        inputs = from_counts(A=5, B=3)
        first = simulate(protocol, inputs, seed=123, max_steps=5000)
        second = simulate(protocol, inputs, seed=123, max_steps=5000)
        assert first.final == second.final
        assert first.steps == second.steps

    def test_run_many(self):
        protocol = majority_protocol()
        simulator = Simulator(protocol, seed=5)
        results = simulator.run_many(from_counts(A=4, B=2), repetitions=5, max_steps=5000)
        assert len(results) == 5
        assert all(isinstance(result, SimulationResult) for result in results)

    def test_run_from_arbitrary_configuration(self):
        protocol = flock_of_birds_protocol(2)
        simulator = Simulator(protocol, seed=1)
        result = simulator.run_from(Configuration({2: 3}), max_steps=1000)
        assert result.consensus == 1

    def test_requires_petri_net_protocol(self):
        from repro.core import OUTPUT_ZERO, Protocol, RelationPreorder, zero

        protocol = Protocol(
            states=["i"],
            preorder=RelationPreorder(lambda a, b: a == b),
            leaders=zero(),
            initial_states=["i"],
            output={"i": OUTPUT_ZERO},
        )
        with pytest.raises(ValueError):
            Simulator(protocol)

    def test_transition_scheduler_also_converges(self):
        protocol = flock_of_birds_protocol(3)
        result = simulate(
            protocol,
            protocol.counting_input(4),
            seed=9,
            scheduler=TransitionScheduler(),
            max_steps=20000,
        )
        assert result.consensus == 1


class TestStatistics:
    def test_summary_of_converged_runs(self):
        protocol = majority_protocol()
        simulator = Simulator(protocol, seed=11)
        results = simulator.run_many(from_counts(A=5, B=2), repetitions=8, max_steps=10000)
        stats = summarize_runs(results)
        assert stats.runs == 8
        assert stats.converged == 8
        assert stats.convergence_rate == 1.0
        assert stats.mean_steps is not None and stats.mean_steps > 0
        assert stats.min_steps <= stats.median_steps <= stats.max_steps

    def test_summary_of_empty_batch_raises_value_error(self):
        # Regression: this used to silently return an all-None summary, and a
        # naive implementation would raise ZeroDivisionError from the mean.
        # An empty ensemble is a caller bug and must fail loudly and clearly.
        with pytest.raises(ValueError, match="empty batch"):
            summarize_runs([])

    def test_summary_of_single_run_batch(self):
        protocol = majority_protocol()
        results = Simulator(protocol, seed=1).run_many(
            from_counts(A=4, B=2), repetitions=1, max_steps=10000
        )
        stats = summarize_runs(results)
        assert stats.runs == 1
        assert stats.mean_steps == stats.median_steps == stats.max_steps == stats.min_steps

    def test_accuracy_against_predicate(self):
        protocol = majority_protocol()
        simulator = Simulator(protocol, seed=2)
        inputs = from_counts(A=6, B=2)
        results = simulator.run_many(inputs, repetitions=5, max_steps=10000)
        accuracy = accuracy_against_predicate(results, majority_predicate(), inputs)
        assert accuracy == 1.0

    def test_accuracy_of_empty_batch_is_zero(self):
        assert accuracy_against_predicate([], majority_predicate(), from_counts(A=1)) == 0.0

    def test_interactions_per_second(self):
        protocol = majority_protocol()
        simulator = Simulator(protocol, seed=3)
        results = simulator.run_many(from_counts(A=4, B=2), repetitions=3, max_steps=3000)
        total = sum(result.interactions_sampled for result in results)
        assert interactions_per_second(results, 2.0) == total / 2.0
        with pytest.raises(ValueError):
            interactions_per_second(results, 0.0)
