"""Unit tests for repro.core.protocol."""

import pytest

from repro.core import (
    Configuration,
    OUTPUT_ONE,
    OUTPUT_UNDEFINED,
    OUTPUT_ZERO,
    PetriNet,
    PetriNetPreorder,
    Protocol,
    from_counts,
    pairwise,
    zero,
)


@pytest.fixture
def simple_protocol():
    net = PetriNet([pairwise(("i", "i"), ("p", "p"))])
    return Protocol.from_petri_net(
        net,
        leaders=zero(),
        initial_states=["i"],
        output={"i": OUTPUT_ZERO, "p": OUTPUT_ONE},
        name="simple",
    )


@pytest.fixture
def leader_protocol():
    net = PetriNet([pairwise(("i", "L"), ("p", "L"))])
    return Protocol.from_petri_net(
        net,
        leaders=from_counts(L=2),
        initial_states=["i"],
        output={"i": OUTPUT_ZERO, "p": OUTPUT_ONE, "L": OUTPUT_UNDEFINED},
        name="with-leaders",
    )


class TestConstruction:
    def test_measures(self, simple_protocol):
        assert simple_protocol.num_states == 2
        assert simple_protocol.num_leaders == 0
        assert simple_protocol.width == 2
        assert simple_protocol.is_leaderless()

    def test_leader_protocol_measures(self, leader_protocol):
        assert leader_protocol.num_leaders == 2
        assert not leader_protocol.is_leaderless()

    def test_missing_output_rejected(self):
        net = PetriNet([pairwise(("i", "i"), ("p", "p"))])
        with pytest.raises(ValueError):
            Protocol.from_petri_net(net, zero(), ["i"], output={"i": OUTPUT_ZERO})

    def test_invalid_output_value_rejected(self):
        net = PetriNet([pairwise(("i", "i"), ("p", "p"))])
        with pytest.raises(ValueError):
            Protocol.from_petri_net(net, zero(), ["i"], output={"i": 0, "p": 7})

    def test_leaders_outside_states_rejected(self):
        net = PetriNet([pairwise(("i", "i"), ("p", "p"))])
        with pytest.raises(ValueError):
            Protocol.from_petri_net(
                net, from_counts(x=1), ["i"], output={"i": 0, "p": 1}
            )

    def test_empty_state_set_rejected(self):
        preorder = PetriNetPreorder(PetriNet())
        with pytest.raises(ValueError):
            Protocol([], preorder, zero(), [], {})

    def test_extra_states_added(self):
        net = PetriNet([pairwise(("i", "i"), ("p", "p"))])
        protocol = Protocol.from_petri_net(
            net,
            zero(),
            ["i"],
            output={"i": 0, "p": 1, "q": 1},
            extra_states=["q"],
        )
        assert protocol.num_states == 3

    def test_petri_net_accessor(self, simple_protocol):
        assert simple_protocol.petri_net is not None
        assert simple_protocol.petri_net.num_transitions == 1


class TestOutputs:
    def test_configuration_output_collects_populated_states(self, leader_protocol):
        outputs = leader_protocol.configuration_output(from_counts(i=1, L=1))
        assert outputs == {OUTPUT_ZERO, OUTPUT_UNDEFINED}

    def test_consensus_one_requires_all_ones(self, simple_protocol):
        assert simple_protocol.has_consensus(from_counts(p=3), OUTPUT_ONE)
        assert not simple_protocol.has_consensus(from_counts(p=3, i=1), OUTPUT_ONE)

    def test_consensus_zero_accepts_empty_configuration(self, simple_protocol):
        # The paper interprets the zero configuration as output 0.
        assert simple_protocol.has_consensus(zero(), OUTPUT_ZERO)
        assert not simple_protocol.has_consensus(zero(), OUTPUT_ONE)

    def test_undefined_output_blocks_both_consensuses(self, leader_protocol):
        configuration = from_counts(L=1)
        assert not leader_protocol.has_consensus(configuration, OUTPUT_ZERO)
        assert not leader_protocol.has_consensus(configuration, OUTPUT_ONE)

    def test_consensus_invalid_value(self, simple_protocol):
        with pytest.raises(ValueError):
            simple_protocol.has_consensus(zero(), 2)

    def test_output_table_is_a_read_only_view(self, simple_protocol):
        table = simple_protocol.output_table
        assert dict(table) == simple_protocol.output
        with pytest.raises(TypeError):
            table["p"] = OUTPUT_ZERO


class TestInitialConfigurations:
    def test_initial_configuration_adds_leaders(self, leader_protocol):
        configuration = leader_protocol.initial_configuration(from_counts(i=3))
        assert configuration == from_counts(i=3, L=2)

    def test_initial_configuration_leaderless(self, simple_protocol):
        assert simple_protocol.initial_configuration(from_counts(i=2)) == from_counts(i=2)

    def test_non_initial_states_rejected(self, simple_protocol):
        with pytest.raises(ValueError):
            simple_protocol.initial_configuration(from_counts(p=1))

    def test_counting_input(self, simple_protocol):
        assert simple_protocol.counting_input(4) == from_counts(i=4)

    def test_counting_input_requires_singleton_initial_states(self):
        net = PetriNet([pairwise(("a", "b"), ("a", "a"))])
        protocol = Protocol.from_petri_net(
            net, zero(), ["a", "b"], output={"a": 1, "b": 0}
        )
        with pytest.raises(ValueError):
            protocol.counting_input(3)

    def test_empty_input_is_just_leaders(self, leader_protocol):
        assert leader_protocol.initial_configuration(zero()) == from_counts(L=2)


class TestDescribe:
    def test_describe_lists_states_and_outputs(self, leader_protocol):
        text = leader_protocol.describe()
        assert "with-leaders" in text
        assert "gamma(L)" in text

    def test_repr(self, simple_protocol):
        assert "width=2" in repr(simple_protocol)
