"""Tests for the sweep harness: spec expansion, stores, runner, CLI.

The load-bearing properties:

* spec expansion is deterministic and keyfield-ordered; cell seeds depend on
  the master seed and the cell's engine-free identity only,
* stores round-trip losslessly, flush atomically, and recover (by dropping)
  a torn trailing row instead of loading garbage,
* the runner produces **byte-identical** store files across backends and
  across kill-and-resume cycles, re-runs stale ``running``/torn cells, and
  records failures as ``error`` rows,
* the CLI drives the same machinery end to end.
"""

import json
import os
from pathlib import Path

import pytest

from repro.simulation import BatchRunner, summarize_runs
from repro.sweep import (
    COLUMNS,
    CsvResultStore,
    JsonlResultStore,
    MemoryResultStore,
    StoreCorruptionError,
    SweepRunner,
    SweepSpec,
    build_protocol_and_inputs,
    normalize_error_message,
    open_store,
    register_sweep_protocol,
    to_experiment_table,
)
from repro.sweep.cli import main as sweep_main
from repro.sweep.spec import _PROTOCOL_BUILDERS
from repro.sweep.store import STATUS_DONE, STATUS_ERROR, STATUS_RUNNING


def _small_spec(**overrides):
    """A fast 2-protocol x 2-population x 2-engine grid (8 cells)."""
    options = dict(
        protocols=("majority", ("modulo", {"modulus": 2, "remainder": 0})),
        populations=(8, 12),
        schedulers=("uniform",),
        engines=("compiled", "reference"),
        repetitions=2,
        master_seed=42,
        max_steps=300,
        stability_window=50,
    )
    options.update(overrides)
    return SweepSpec(**options)


class TestSweepSpec:
    def test_expansion_is_keyfield_ordered(self):
        spec = _small_spec()
        cells = spec.cells()
        assert len(cells) == len(spec) == 8
        # The engine axis varies fastest, then scheduler, population, protocol.
        assert [(c.protocol, c.population, c.engine) for c in cells] == [
            ("majority", 8, "compiled"), ("majority", 8, "reference"),
            ("majority", 12, "compiled"), ("majority", 12, "reference"),
            ("modulo", 8, "compiled"), ("modulo", 8, "reference"),
            ("modulo", 12, "compiled"), ("modulo", 12, "reference"),
        ]
        assert len({cell.cell_id for cell in cells}) == len(cells)

    def test_expansion_is_reproducible(self):
        assert _small_spec().cells() == _small_spec().cells()

    def test_cell_seeds_ignore_the_engine_axis(self):
        spec = _small_spec()
        seeds = {}
        for cell in spec.cells():
            seeds.setdefault(cell.seed_scope, set()).add(spec.cell_seed(cell))
        # Engine rows of one grid point share their seed; distinct grid
        # points get distinct seeds.
        assert all(len(values) == 1 for values in seeds.values())
        assert len({value for values in seeds.values() for value in values}) == 4

    def test_cell_seeds_are_position_independent(self):
        narrow = _small_spec(populations=(12,))
        wide = _small_spec(populations=(8, 12, 16))
        narrow_seeds = {c.cell_id: narrow.cell_seed(c) for c in narrow.cells()}
        wide_seeds = {c.cell_id: wide.cell_seed(c) for c in wide.cells()}
        for cell_id, seed in narrow_seeds.items():
            assert wide_seeds[cell_id] == seed

    def test_master_seed_changes_every_cell_seed(self):
        first = _small_spec(master_seed=1)
        second = _small_spec(master_seed=2)
        for one, two in zip(first.cells(), second.cells()):
            assert first.cell_seed(one) != second.cell_seed(two)

    def test_json_round_trip(self):
        spec = _small_spec()
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_validation_rejects_bad_axes(self):
        with pytest.raises(ValueError, match="unknown sweep protocol"):
            _small_spec(protocols=("no-such-protocol",))
        with pytest.raises(ValueError, match="does not accept parameters"):
            _small_spec(protocols=(("majority", {"threshold": 3}),))
        with pytest.raises(ValueError, match="unknown engine"):
            _small_spec(engines=("warp",))
        with pytest.raises(ValueError, match="unknown scheduler"):
            _small_spec(schedulers=("fifo",))
        with pytest.raises(ValueError, match="at least one protocol"):
            _small_spec(protocols=())
        with pytest.raises(ValueError, match="positive"):
            _small_spec(populations=(0,))
        with pytest.raises(ValueError, match="duplicate"):
            _small_spec(populations=(8, 8))
        with pytest.raises(ValueError, match="repetitions"):
            _small_spec(repetitions=0)
        with pytest.raises(ValueError, match="JSON-serializable"):
            _small_spec(protocols=(("majority", {"a_fraction": {1, 2}}),))

    def test_validation_rejects_non_integer_scalars(self):
        # Hand-written spec files: "4" and 2.5 must fail *here*, not as a
        # TypeError mid-validation or as eight identical error rows later.
        with pytest.raises(ValueError, match="repetitions must be an integer"):
            _small_spec(repetitions="4")
        with pytest.raises(ValueError, match="repetitions must be an integer"):
            _small_spec(repetitions=2.5)
        with pytest.raises(ValueError, match="population must be an integer"):
            _small_spec(populations=(20.5,))
        with pytest.raises(ValueError, match="max_steps must be an integer"):
            _small_spec(max_steps=True)
        # Exact JSON floats are welcome (json has no integer type).
        assert _small_spec(repetitions=4.0).repetitions == 4

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown sweep spec fields"):
            SweepSpec.from_dict(
                {"protocols": ["majority"], "populations": [4], "workers": 2}
            )

    def test_build_protocol_and_inputs(self):
        protocol, inputs = build_protocol_and_inputs("majority", 9)
        assert inputs.size == 9
        assert protocol.petri_net is not None
        with pytest.raises(ValueError, match="unknown sweep protocol"):
            build_protocol_and_inputs("nope", 5)
        with pytest.raises(ValueError, match="population"):
            build_protocol_and_inputs("majority", 0)


@pytest.mark.parametrize("store_class", [CsvResultStore, JsonlResultStore])
class TestResultStore:
    def _populate(self, store):
        spec = _small_spec()
        cells = spec.cells()[:3]
        for cell in cells:
            store.ensure(cell.cell_id, cell.keyfields(), spec.cell_seed(cell))
        done = summarize_runs(
            BatchRunner(
                build_protocol_and_inputs("majority", 8)[0], backend="serial"
            ).run_many(build_protocol_and_inputs("majority", 8)[1], 2, seed=1,
                       max_steps=200)
        )
        store.mark_done(cells[0].cell_id, done)
        store.mark_error(cells[1].cell_id, "ValueError: boom")
        return cells

    def test_round_trip_preserves_types_and_order(self, store_class, tmp_path):
        path = tmp_path / ("store" + (".csv" if store_class is CsvResultStore else ".jsonl"))
        store = store_class(path)
        cells = self._populate(store)
        store.flush()
        reloaded = store_class(path)
        assert reloaded.rows() == store.rows()
        assert [row["cell"] for row in reloaded.rows()] == [c.cell_id for c in cells]
        done_row = reloaded.get(cells[0].cell_id)
        assert isinstance(done_row["mean_steps"], float)
        assert isinstance(done_row["runs"], int)
        assert done_row["error"] is None
        assert reloaded.status(cells[1].cell_id) == STATUS_ERROR
        assert reloaded.get(cells[1].cell_id)["error"] == "ValueError: boom"
        assert reloaded.status(cells[2].cell_id) == "created"

    def test_flush_is_byte_stable_across_reload_cycles(self, store_class, tmp_path):
        path = tmp_path / ("store" + (".csv" if store_class is CsvResultStore else ".jsonl"))
        store = store_class(path)
        self._populate(store)
        store.flush()
        first = path.read_bytes()
        reloaded = store_class(path)
        reloaded.flush()
        assert path.read_bytes() == first

    def test_flush_leaves_no_temporary_file(self, store_class, tmp_path):
        path = tmp_path / ("store" + (".csv" if store_class is CsvResultStore else ".jsonl"))
        store = store_class(path)
        self._populate(store)
        store.flush()
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_truncated_last_line_is_dropped_and_reported(self, store_class, tmp_path):
        path = tmp_path / ("store" + (".csv" if store_class is CsvResultStore else ".jsonl"))
        store = store_class(path)
        cells = self._populate(store)
        store.flush()
        intact = store_class(path)
        # Tear the tail mid-row, as a crashed non-atomic writer would.
        data = path.read_bytes()
        path.write_bytes(data[:-15])
        recovered = store_class(path)
        assert len(recovered) == len(intact) - 1
        assert cells[2].cell_id not in recovered
        assert recovered.recovered_cells  # the tear was noticed, not silent
        # The surviving rows are unharmed.
        assert recovered.rows() == intact.rows()[:-1]

    def test_corruption_before_the_last_row_raises(self, store_class, tmp_path):
        path = tmp_path / ("store" + (".csv" if store_class is CsvResultStore else ".jsonl"))
        store = store_class(path)
        self._populate(store)
        store.flush()
        lines = path.read_text().splitlines(keepends=True)
        # Damage the first *data* row (not the tail): unrecoverable.
        damaged = 1 if store_class is CsvResultStore else 0
        lines[damaged] = lines[damaged][:10] + "\n"
        path.write_text("".join(lines))
        with pytest.raises(StoreCorruptionError):
            store_class(path)

    def test_ensure_rejects_foreign_stores(self, store_class, tmp_path):
        path = tmp_path / ("store" + (".csv" if store_class is CsvResultStore else ".jsonl"))
        store = store_class(path)
        spec = _small_spec()
        cell = spec.cells()[0]
        store.ensure(cell.cell_id, cell.keyfields(), spec.cell_seed(cell))
        # Same cell again with the same identity: a no-op.
        assert not store.ensure(cell.cell_id, cell.keyfields(), spec.cell_seed(cell))
        # A different master seed means a different table.
        with pytest.raises(StoreCorruptionError, match="master seed"):
            store.ensure(cell.cell_id, cell.keyfields(), spec.cell_seed(cell) + 1)
        mismatched = dict(cell.keyfields(), population=999)
        with pytest.raises(StoreCorruptionError, match="different sweep spec"):
            store.ensure(cell.cell_id, mismatched, spec.cell_seed(cell))

    def test_marking_unknown_cells_raises(self, store_class, tmp_path):
        path = tmp_path / ("store" + (".csv" if store_class is CsvResultStore else ".jsonl"))
        store = store_class(path)
        with pytest.raises(KeyError):
            store.mark_running("nope")

    def test_multiline_error_messages_survive_the_round_trip(
        self, store_class, tmp_path
    ):
        # A real traceback: newlines (all three flavors), commas, and
        # quotes — everything that can tear a CSV row or desync a reload.
        traceback_text = (
            'Traceback (most recent call last):\r\n'
            '  File "sim.py", line 3, in run\r'
            '    raise ValueError("bad input, truly")\n'
            'ValueError: bad input, truly'
        )
        path = tmp_path / ("store" + (".csv" if store_class is CsvResultStore else ".jsonl"))
        store = store_class(path)
        spec = _small_spec()
        cells = spec.cells()[:2]
        for cell in cells:
            store.ensure(cell.cell_id, cell.keyfields(), spec.cell_seed(cell))
        store.mark_error(cells[0].cell_id, traceback_text)
        store.flush()
        expected = normalize_error_message(traceback_text)
        assert "\n" not in expected and "\r" not in expected
        reloaded = store_class(path)
        # One physical line per row: the reload sees both rows intact and
        # the normalized message verbatim.
        assert len(reloaded) == 2
        assert reloaded.get(cells[0].cell_id)["error"] == expected
        assert reloaded.status(cells[1].cell_id) == "created"
        # And the reload re-flushes byte-identically.
        first = path.read_bytes()
        reloaded.flush()
        assert path.read_bytes() == first


class TestOpenStore:
    def test_dispatches_on_suffix(self, tmp_path):
        assert isinstance(open_store(tmp_path / "a.csv"), CsvResultStore)
        assert isinstance(open_store(tmp_path / "a.jsonl"), JsonlResultStore)
        with pytest.raises(ValueError, match="store format"):
            open_store(tmp_path / "a.parquet")


class TestSweepRunner:
    def test_serial_sweep_completes_and_matches_batch_runner(self):
        spec = _small_spec()
        store = MemoryResultStore()
        report = SweepRunner(spec, store, backend="serial").run()
        assert report.complete
        assert report.executed == 8 and report.skipped == 0
        assert store.status_counts() == {STATUS_DONE: 8}
        # Seed discipline: a cell's ensemble is reproducible outside the
        # sweep as BatchRunner.run_many(seed=cell_seed).
        cell = spec.cells()[0]
        protocol, inputs = cell.build()
        with BatchRunner(protocol, backend="serial", engine=cell.engine) as runner:
            expected = summarize_runs(
                runner.run_many(
                    inputs, spec.repetitions, seed=spec.cell_seed(cell),
                    max_steps=spec.max_steps,
                    stability_window=spec.stability_window,
                )
            )
        row = store.get(cell.cell_id)
        assert row["runs"] == expected.runs
        assert row["converged"] == expected.converged
        assert row["mean_steps"] == expected.mean_steps
        assert row["median_steps"] == float(expected.median_steps)
        assert row["min_steps"] == expected.min_steps
        assert row["max_steps"] == expected.max_steps

    def test_engine_rows_report_identical_statistics(self):
        spec = _small_spec()
        store = MemoryResultStore()
        SweepRunner(spec, store, backend="serial").run()
        statistic = lambda row: tuple(
            row[c] for c in ("runs", "converged", "mean_steps", "median_steps",
                             "min_steps", "max_steps", "mean_consensus_step")
        )
        by_scope = {}
        for row, cell in zip(store.rows(), spec.cells()):
            by_scope.setdefault(cell.seed_scope, []).append(statistic(row))
        assert all(len(set(values)) == 1 for values in by_scope.values())
        assert len(by_scope) == 4

    def test_serial_and_process_store_files_are_byte_identical(self, tmp_path):
        spec = _small_spec()
        serial_path = tmp_path / "serial.csv"
        process_path = tmp_path / "process.csv"
        SweepRunner(spec, open_store(serial_path), backend="serial").run()
        SweepRunner(
            spec, open_store(process_path), backend="process", max_workers=2
        ).run()
        assert serial_path.read_bytes() == process_path.read_bytes()

    @pytest.mark.parametrize("suffix", [".csv", ".jsonl"])
    def test_kill_and_resume_matches_uninterrupted_run(self, tmp_path, suffix):
        spec = _small_spec()
        straight = tmp_path / ("straight" + suffix)
        SweepRunner(spec, open_store(straight), backend="serial").run()

        interrupted = tmp_path / ("interrupted" + suffix)
        first = SweepRunner(spec, open_store(interrupted), backend="serial").run(
            max_cells=3
        )
        assert first.executed == 3 and first.remaining == 5
        assert interrupted.read_bytes() != straight.read_bytes()
        # Resume from a fresh runner over the half-finished store.
        second = SweepRunner(spec, open_store(interrupted), backend="serial").run()
        assert second.skipped == 3 and second.executed == 5
        assert interrupted.read_bytes() == straight.read_bytes()

    def test_stale_running_rows_are_rerun_on_resume(self, tmp_path):
        spec = _small_spec()
        straight = tmp_path / "straight.csv"
        SweepRunner(spec, open_store(straight), backend="serial").run()
        reference_bytes = straight.read_bytes()
        # Simulate a kill mid-cell: the store shows the cell as running.
        crashed = open_store(straight)
        victim = spec.cells()[4].cell_id
        crashed.mark_running(victim)
        crashed.flush()
        assert straight.read_bytes() != reference_bytes
        report = SweepRunner(spec, open_store(straight), backend="serial").run()
        assert report.executed == 1 and report.skipped == 7
        assert straight.read_bytes() == reference_bytes
        assert open_store(straight).status(victim) == STATUS_DONE

    def test_torn_store_tail_is_rerun_to_the_same_table(self, tmp_path):
        spec = _small_spec()
        straight = tmp_path / "straight.csv"
        SweepRunner(spec, open_store(straight), backend="serial").run()
        reference_bytes = straight.read_bytes()
        torn = tmp_path / "torn.csv"
        torn.write_bytes(reference_bytes[:-20])
        store = open_store(torn)
        assert store.recovered_cells
        report = SweepRunner(spec, store, backend="serial").run()
        assert report.executed == 1 and report.skipped == 7
        assert torn.read_bytes() == reference_bytes

    def test_failing_cells_become_error_rows(self, tmp_path):
        def boom(population, params):
            raise RuntimeError("deliberate failure")

        register_sweep_protocol("always-boom", boom)
        try:
            spec = _small_spec(
                protocols=("majority", "always-boom"), populations=(8,),
                engines=("compiled",),
            )
            store = MemoryResultStore()
            report = SweepRunner(spec, store, backend="serial").run(
                on_error="continue"
            )
            assert report.failed == 1 and report.executed == 1
            assert not report.complete
            counts = store.status_counts()
            assert counts == {STATUS_DONE: 1, STATUS_ERROR: 1}
            error_row = [r for r in store.rows() if r["status"] == STATUS_ERROR][0]
            assert "deliberate failure" in error_row["error"]

            # The default re-raises (after persisting the error row) ...
            with pytest.raises(RuntimeError, match="deliberate failure"):
                SweepRunner(spec, MemoryResultStore(), backend="serial").run()
            # ... and resumption retries errors unless told not to.  Skipped
            # error rows are still failures: the report stays incomplete.
            skip = SweepRunner(
                spec, store, backend="serial", retry_errors=False
            ).run(on_error="continue")
            assert skip.skipped == 2 and skip.failed == 0
            assert skip.skipped_errors == 1
            assert not skip.complete
        finally:
            _PROTOCOL_BUILDERS.pop("always-boom")

    def test_max_cells_zero_attempts_nothing(self):
        spec = _small_spec()
        store = MemoryResultStore()
        report = SweepRunner(spec, store, backend="serial").run(max_cells=0)
        assert report.executed == 0 and report.remaining == 8
        assert store.status_counts() == {"created": 8}

    def test_invalid_arguments_rejected(self):
        spec = _small_spec()
        with pytest.raises(ValueError, match="backend"):
            SweepRunner(spec, MemoryResultStore(), backend="thread")
        with pytest.raises(ValueError, match="max_workers"):
            SweepRunner(spec, MemoryResultStore(), max_workers=0)
        runner = SweepRunner(spec, MemoryResultStore(), backend="serial")
        with pytest.raises(ValueError, match="on_error"):
            runner.run(on_error="ignore")
        with pytest.raises(ValueError, match="max_cells"):
            runner.run(max_cells=-1)

    def test_to_experiment_table_renders_all_rows(self):
        spec = _small_spec(populations=(8,), engines=("compiled",))
        store = MemoryResultStore()
        SweepRunner(spec, store, backend="serial").run()
        table = to_experiment_table(store, experiment_id="T")
        assert len(table) == 2
        assert list(table.columns) == list(COLUMNS)
        rendered = table.render()
        assert "majority" in rendered and "modulo" in rendered


class TestSweepCli:
    def _write_spec(self, tmp_path):
        spec = _small_spec()
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        return path, spec

    def test_template_round_trips(self, capsys):
        assert sweep_main(["template"]) == 0
        SweepSpec.from_json(capsys.readouterr().out)  # must parse and validate

    def test_run_show_and_resume(self, tmp_path, capsys):
        spec_path, spec = self._write_spec(tmp_path)
        store_path = tmp_path / "results.csv"
        assert sweep_main([
            "run", "--spec", str(spec_path), "--store", str(store_path),
            "--backend", "serial", "--quiet",
        ]) == 0
        first = store_path.read_bytes()
        output = capsys.readouterr().out
        assert "8 executed" in output
        # A second run resumes: everything is already done.
        assert sweep_main([
            "run", "--spec", str(spec_path), "--store", str(store_path),
            "--backend", "serial", "--quiet",
        ]) == 0
        assert "8 skipped" in capsys.readouterr().out
        assert store_path.read_bytes() == first
        assert sweep_main(["show", "--store", str(store_path)]) == 0
        assert "majority" in capsys.readouterr().out

    def test_cli_interrupt_and_resume_is_bit_identical(self, tmp_path, capsys):
        # The acceptance scenario: >= 2 protocols x >= 2 populations x >= 2
        # engines through the CLI, killed mid-sweep (--max-cells), resumed
        # from a copy, byte-identical to the uninterrupted table.
        spec_path, spec = self._write_spec(tmp_path)
        full = tmp_path / "full.csv"
        assert sweep_main([
            "run", "--spec", str(spec_path), "--store", str(full),
            "--backend", "serial", "--quiet",
        ]) == 0
        half = tmp_path / "half.csv"
        assert sweep_main([
            "run", "--spec", str(spec_path), "--store", str(half),
            "--backend", "serial", "--max-cells", "4", "--quiet",
        ]) == 0
        assert "4 remaining" in capsys.readouterr().out
        assert half.read_bytes() != full.read_bytes()
        resumed = tmp_path / "resumed.csv"
        resumed.write_bytes(half.read_bytes())
        assert sweep_main([
            "run", "--spec", str(spec_path), "--store", str(resumed),
            "--backend", "serial", "--quiet",
        ]) == 0
        assert resumed.read_bytes() == full.read_bytes()

    def test_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        assert sweep_main([
            "run", "--spec", str(tmp_path / "none.json"),
            "--store", str(tmp_path / "out.csv"),
        ]) == 2
        assert "not found" in capsys.readouterr().err

    def test_mismatched_store_fails_cleanly(self, tmp_path, capsys):
        # Editing the spec (here: the master seed) after a store was written
        # must be a clean one-line refusal, not a traceback.
        spec_path, spec = self._write_spec(tmp_path)
        store_path = tmp_path / "results.csv"
        assert sweep_main([
            "run", "--spec", str(spec_path), "--store", str(store_path),
            "--backend", "serial", "--max-cells", "1", "--quiet",
        ]) == 0
        spec_path.write_text(_small_spec(master_seed=777).to_json())
        assert sweep_main([
            "run", "--spec", str(spec_path), "--store", str(store_path),
            "--backend", "serial", "--quiet",
        ]) == 2
        assert "does not match this spec" in capsys.readouterr().err

    def test_unknown_store_suffix_fails_cleanly(self, tmp_path, capsys):
        spec_path, _ = self._write_spec(tmp_path)
        assert sweep_main([
            "run", "--spec", str(spec_path),
            "--store", str(tmp_path / "out.parquet"),
        ]) == 2
        assert "cannot open store" in capsys.readouterr().err
