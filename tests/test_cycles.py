"""Unit tests for repro.controlstates.cycles and euler."""

import pytest

from repro.algebra import IntVector
from repro.controlstates import (
    ControlStatePetriNet,
    Cycle,
    Edge,
    Multicycle,
    Path,
    component_control_net,
    euler_lemma,
    eulerian_cycle_from_parikh,
    is_balanced,
)
from repro.core import PetriNet, Transition, from_counts


@pytest.fixture
def ring():
    """A three-control-state ring with one extra chord edge r0 -> r0."""
    transitions = [
        Transition({"r0": 1}, {"r1": 1}, name="t01"),
        Transition({"r1": 1}, {"r2": 1}, name="t12"),
        Transition({"r2": 1}, {"r0": 1}, name="t20"),
        Transition({"r0": 1}, {"r0": 1}, name="loop"),
    ]
    net = PetriNet(transitions)
    configurations = [from_counts(r0=1), from_counts(r1=1), from_counts(r2=1)]
    control = component_control_net(net, configurations)
    return control


def edges_by_name(control):
    return {edge.transition.name: edge for edge in control.edges}


class TestPath:
    def test_edges_must_chain(self, ring):
        edges = edges_by_name(ring)
        with pytest.raises(ValueError):
            Path([edges["t01"], edges["t20"]])

    def test_endpoints_and_length(self, ring):
        edges = edges_by_name(ring)
        path = Path([edges["t01"], edges["t12"]])
        assert path.source == from_counts(r0=1)
        assert path.target == from_counts(r2=1)
        assert path.length == 2

    def test_empty_path(self):
        path = Path([])
        assert path.source is None and path.target is None
        assert path.length == 0

    def test_control_states_in_order(self, ring):
        edges = edges_by_name(ring)
        path = Path([edges["t01"], edges["t12"]])
        assert path.control_states() == [from_counts(r0=1), from_counts(r1=1), from_counts(r2=1)]

    def test_transitions_label(self, ring):
        edges = edges_by_name(ring)
        path = Path([edges["t01"]])
        assert [t.name for t in path.transitions()] == ["t01"]

    def test_displacement(self, ring):
        edges = edges_by_name(ring)
        path = Path([edges["t01"], edges["t12"]])
        assert path.displacement() == IntVector({"r0": -1, "r2": 1})

    def test_concatenation(self, ring):
        edges = edges_by_name(ring)
        combined = Path([edges["t01"]]) + Path([edges["t12"]])
        assert combined.length == 2

    def test_concatenation_mismatch_raises(self, ring):
        edges = edges_by_name(ring)
        with pytest.raises(ValueError):
            Path([edges["t01"]]) + Path([edges["t01"]])

    def test_is_elementary(self, ring):
        edges = edges_by_name(ring)
        assert Path([edges["t01"], edges["t12"]]).is_elementary()
        assert not Path([edges["loop"]]).is_elementary()


class TestCycle:
    def test_cycle_must_return_to_start(self, ring):
        edges = edges_by_name(ring)
        with pytest.raises(ValueError):
            Cycle([edges["t01"]])

    def test_cycle_must_be_non_empty(self):
        with pytest.raises(ValueError):
            Cycle([])

    def test_ring_cycle(self, ring):
        edges = edges_by_name(ring)
        cycle = Cycle([edges["t01"], edges["t12"], edges["t20"]])
        assert cycle.is_simple()
        assert cycle.displacement() == IntVector.zero()

    def test_totality(self, ring):
        edges = edges_by_name(ring)
        partial = Cycle([edges["t01"], edges["t12"], edges["t20"]])
        assert not partial.is_total(ring)
        full = Cycle([edges["loop"], edges["t01"], edges["t12"], edges["t20"]])
        assert full.is_total(ring)

    def test_rotation(self, ring):
        edges = edges_by_name(ring)
        cycle = Cycle([edges["t01"], edges["t12"], edges["t20"]])
        rotated = cycle.rotate_to(from_counts(r1=1))
        assert rotated.source == from_counts(r1=1)
        assert rotated.parikh_image() == cycle.parikh_image()

    def test_rotation_to_missing_state_raises(self, ring):
        edges = edges_by_name(ring)
        cycle = Cycle([edges["loop"]])
        with pytest.raises(ValueError):
            cycle.rotate_to(from_counts(r1=1))

    def test_power(self, ring):
        edges = edges_by_name(ring)
        cycle = Cycle([edges["loop"]])
        assert cycle.power(3).length == 3
        with pytest.raises(ValueError):
            cycle.power(0)

    def test_decompose_simple(self, ring):
        edges = edges_by_name(ring)
        composite = Cycle(
            [edges["loop"], edges["t01"], edges["t12"], edges["t20"], edges["loop"]]
        )
        simple_cycles = composite.decompose_simple()
        assert all(cycle.is_simple() for cycle in simple_cycles)
        total = {}
        for cycle in simple_cycles:
            for edge, count in cycle.parikh_image().items():
                total[edge] = total.get(edge, 0) + count
        assert total == composite.parikh_image()


class TestMulticycle:
    def test_length_and_parikh(self, ring):
        edges = edges_by_name(ring)
        ring_cycle = Cycle([edges["t01"], edges["t12"], edges["t20"]])
        loop_cycle = Cycle([edges["loop"]])
        multicycle = Multicycle([ring_cycle, loop_cycle])
        assert multicycle.length == 4
        assert multicycle.is_total(ring)
        assert multicycle.parikh_image()[edges["loop"]] == 1

    def test_displacement_sums(self, ring):
        edges = edges_by_name(ring)
        multicycle = Multicycle([Cycle([edges["loop"]]), Cycle([edges["loop"]])])
        assert multicycle.displacement() == IntVector.zero()

    def test_addition(self, ring):
        edges = edges_by_name(ring)
        a = Multicycle([Cycle([edges["loop"]])])
        b = Multicycle([Cycle([edges["t01"], edges["t12"], edges["t20"]])])
        assert (a + b).length == 4


class TestEuler:
    def test_is_balanced(self, ring):
        edges = edges_by_name(ring)
        cycle = Cycle([edges["t01"], edges["t12"], edges["t20"]])
        assert is_balanced(cycle.parikh_image())
        assert not is_balanced({edges["t01"]: 1})

    def test_eulerian_cycle_matches_parikh_image(self, ring):
        edges = edges_by_name(ring)
        multicycle = Multicycle(
            [Cycle([edges["t01"], edges["t12"], edges["t20"]]), Cycle([edges["loop"]])]
        )
        cycle = eulerian_cycle_from_parikh(multicycle.parikh_image())
        assert cycle.parikh_image() == multicycle.parikh_image()

    def test_euler_lemma_requires_totality(self, ring):
        edges = edges_by_name(ring)
        multicycle = Multicycle([Cycle([edges["loop"]])])
        with pytest.raises(ValueError):
            euler_lemma(ring, multicycle)

    def test_euler_lemma_produces_total_cycle(self, ring):
        edges = edges_by_name(ring)
        multicycle = Multicycle(
            [
                Cycle([edges["t01"], edges["t12"], edges["t20"]]),
                Cycle([edges["loop"]]),
                Cycle([edges["loop"]]),
            ]
        )
        cycle = euler_lemma(ring, multicycle)
        assert cycle.is_total(ring)
        assert cycle.parikh_image() == multicycle.parikh_image()

    def test_empty_parikh_rejected(self):
        with pytest.raises(ValueError):
            eulerian_cycle_from_parikh({})

    def test_unbalanced_parikh_rejected(self, ring):
        edges = edges_by_name(ring)
        with pytest.raises(ValueError):
            eulerian_cycle_from_parikh({edges["t01"]: 2, edges["t12"]: 1, edges["t20"]: 1})
