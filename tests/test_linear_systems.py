"""Unit tests for repro.algebra.linear_systems (the Lemma 7.3 sign system)."""

import pytest

from repro.algebra import IntVector, SignSystem, SignSystemSolution


@pytest.fixture
def simple_system():
    """Two places, two actions: a1 = (+1, -1), a2 = (-1, +1)."""
    actions = {
        "a1": IntVector({"p": 1, "q": -1}),
        "a2": IntVector({"p": -1, "q": 1}),
    }
    signs = {"p": 1, "q": 1}
    return SignSystem(["p", "q"], actions, signs)


class TestConstruction:
    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            SignSystem(["p"], {"a": IntVector({"p": 1})}, {"p": 0})

    def test_missing_sign_defaults_to_positive(self):
        system = SignSystem(["p"], {"a": IntVector({"p": 1})}, {})
        assert system.signs["p"] == 1

    def test_repr(self, simple_system):
        assert "places=2" in repr(simple_system)


class TestSolutions:
    def test_balanced_combination_is_a_solution(self, simple_system):
        # alpha = 0, one of each action: displacements cancel.
        solution = simple_system.make_solution({}, {"a1": 1, "a2": 1})
        assert simple_system.is_solution(solution)

    def test_unbalanced_combination_is_not_a_solution(self, simple_system):
        solution = simple_system.make_solution({}, {"a1": 1})
        assert not simple_system.is_solution(solution)

    def test_alpha_absorbs_positive_displacement(self, simple_system):
        # One a1 only: displacement (+1, -1); with signs (+, +) the q equation
        # cannot be satisfied by a non-negative alpha, so not a solution.
        assert not simple_system.is_solution(simple_system.make_solution({"p": 1}, {"a1": 1}))

    def test_solution_with_negative_sign(self):
        system = SignSystem(
            ["p"], {"a": IntVector({"p": -2})}, {"p": -1}
        )
        # -1 * alpha(p) = beta(a) * (-2)  =>  alpha(p) = 2 beta(a).
        assert system.is_solution(system.make_solution({"p": 2}, {"a": 1}))

    def test_solution_from_multicycle(self, simple_system):
        displacement = IntVector({"p": 0, "q": 0})
        solution = simple_system.solution_from_multicycle(displacement, {"a1": 2, "a2": 2})
        assert simple_system.is_solution(solution)
        assert solution.norm1 == 4


class TestMinimalSolutionsAndDecomposition:
    def test_minimal_solutions_are_solutions(self, simple_system):
        for solution in simple_system.minimal_solutions():
            assert simple_system.is_solution(solution)

    def test_expected_minimal_solution_present(self, simple_system):
        minimal = simple_system.minimal_solutions()
        target = SignSystemSolution(IntVector.zero(), IntVector({"a1": 1, "a2": 1}))
        assert target in minimal

    def test_decompose_recovers_the_sum(self, simple_system):
        solution = simple_system.make_solution({}, {"a1": 3, "a2": 3})
        parts = simple_system.decompose(solution)
        total = SignSystemSolution(IntVector.zero(), IntVector.zero())
        for part in parts:
            total = total + part
        assert total == solution

    def test_pottier_bound_dominates_minimal_norms(self, simple_system):
        bound = simple_system.pottier_bound()
        for solution in simple_system.minimal_solutions():
            assert solution.norm1 <= bound


class TestSolutionAlgebra:
    def test_addition(self):
        a = SignSystemSolution(IntVector({"p": 1}), IntVector({"a": 2}))
        b = SignSystemSolution(IntVector({"q": 1}), IntVector({"a": 1}))
        total = a + b
        assert total.alpha == IntVector({"p": 1, "q": 1})
        assert total.beta == IntVector({"a": 3})

    def test_norm1(self):
        solution = SignSystemSolution(IntVector({"p": 2}), IntVector({"a": 3}))
        assert solution.norm1 == 5

    def test_equality_and_hash(self):
        a = SignSystemSolution(IntVector({"p": 1}), IntVector({"a": 1}))
        b = SignSystemSolution(IntVector({"p": 1}), IntVector({"a": 1}))
        assert a == b
        assert hash(a) == hash(b)
