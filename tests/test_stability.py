"""Unit tests for repro.analysis.stability (Section 5)."""

import pytest

from repro.analysis import (
    is_stabilized,
    lift_restricted_word,
    rackoff_stabilization_threshold,
    stabilization_certificate,
    violating_state,
)
from repro.core import PetriNet, Transition, from_counts, pairwise
from repro.protocols.example_4_2 import (
    STATE_I,
    STATE_I_BAR,
    STATE_P_BAR,
    STATE_Q_BAR,
    example_4_2_petri_net,
)

ALLOWED = frozenset({STATE_I_BAR, STATE_P_BAR, STATE_Q_BAR})


@pytest.fixture
def net():
    return example_4_2_petri_net()


class TestIsStabilized:
    def test_all_barred_configuration_is_stabilized(self, net):
        assert is_stabilized(net, from_counts(i_bar=2), ALLOWED)
        assert is_stabilized(net, from_counts(i_bar=1, p_bar=2, q_bar=1), ALLOWED)

    def test_configuration_with_forbidden_state_is_not_stabilized(self, net):
        assert not is_stabilized(net, from_counts(i_bar=1, p=1), ALLOWED)

    def test_configuration_that_can_reach_forbidden_state_is_not_stabilized(self, net):
        # i + i_bar can fire t and produce p + q.
        assert not is_stabilized(net, from_counts(i=1, i_bar=1), ALLOWED)

    def test_zero_configuration_is_stabilized(self, net):
        assert is_stabilized(net, from_counts(), ALLOWED)

    def test_lemma_5_1_equivalence_with_output_stability(self, net):
        # Lemma 5.1: (T, gamma^{-1}(0))-stabilized == 0-output stable.
        from repro.core import OUTPUT_ZERO, is_output_stable
        from repro.protocols.example_4_2 import example_4_2_protocol

        protocol = example_4_2_protocol(2)
        for configuration in (
            from_counts(i_bar=2),
            from_counts(i_bar=1, p_bar=1),
            from_counts(i=1, i_bar=1),
            from_counts(p=1, q=1),
        ):
            assert is_stabilized(net, configuration, ALLOWED) == is_output_stable(
                protocol, configuration, OUTPUT_ZERO
            )


class TestViolatingState:
    def test_no_violation_for_stabilized_configuration(self, net):
        assert violating_state(net, from_counts(i_bar=2), ALLOWED) is None

    def test_violation_reports_state_and_witness(self, net):
        result = violating_state(net, from_counts(i=1, i_bar=1), ALLOWED)
        assert result is not None
        state, witness = result
        assert state not in ALLOWED
        final = net.fire_word(from_counts(i=1, i_bar=1), witness)
        assert final[state] >= 1


class TestCertificates:
    def test_certificate_from_stabilized_configuration(self, net):
        certificate = stabilization_certificate(net, from_counts(i_bar=3), ALLOWED)
        # Everything below the base configuration on the small states is certified.
        assert certificate.implies_stabilized(from_counts(i_bar=2))
        assert certificate.implies_stabilized(from_counts())

    def test_certificate_is_sound(self, net):
        certificate = stabilization_certificate(net, from_counts(i_bar=2, p_bar=1), ALLOWED)
        candidates = [
            from_counts(i_bar=1),
            from_counts(p_bar=1),
            from_counts(i_bar=2, p_bar=1),
            from_counts(i_bar=1, q_bar=0),
        ]
        for candidate in candidates:
            if certificate.implies_stabilized(candidate):
                assert is_stabilized(net, candidate, ALLOWED)

    def test_certificate_rejects_non_stabilized_base(self, net):
        with pytest.raises(ValueError):
            stabilization_certificate(net, from_counts(i=1, i_bar=1), ALLOWED)

    def test_threshold_below_rackoff_rejected(self, net):
        with pytest.raises(ValueError):
            stabilization_certificate(net, from_counts(i_bar=1), ALLOWED, threshold=1)

    def test_default_threshold_is_rackoff(self, net):
        certificate = stabilization_certificate(net, from_counts(i_bar=1), ALLOWED)
        assert certificate.threshold == rackoff_stabilization_threshold(net)

    def test_small_states_cover_everything_for_small_configurations(self, net):
        certificate = stabilization_certificate(net, from_counts(i_bar=1), ALLOWED)
        # The base configuration is far below the Rackoff threshold everywhere.
        assert certificate.small_states == frozenset(net.states)


class TestLemma52Lifting:
    def test_lifting_a_restricted_run(self):
        # Full net: a + x -> b + x.  Restricted to {a, b} the x is not needed.
        transition = Transition({"a": 1, "x": 1}, {"b": 1, "x": 1}, name="t")
        net = PetriNet([transition])
        word = [transition]
        # The hypothesis requires x >= |word| * ||T||_inf agents outside {a, b}.
        configuration = from_counts(a=1, x=1)
        lifted = lift_restricted_word(net, configuration, word, restricted_states=["a", "b"])
        assert lifted == from_counts(b=1, x=1)

    def test_hypothesis_violation_raises(self):
        transition = Transition({"a": 1, "x": 1}, {"b": 1, "x": 1}, name="t")
        net = PetriNet([transition])
        with pytest.raises(ValueError):
            lift_restricted_word(net, from_counts(a=1), [transition], restricted_states=["a", "b"])

    def test_quantitative_conclusion(self):
        # Lemma 5.2 also bounds the loss outside Q: beta(p) >= alpha(p) - |word| * ||T||_inf.
        transition = Transition({"a": 1, "x": 1}, {"b": 1}, name="consume_x")
        net = PetriNet([transition])
        configuration = from_counts(a=2, x=5)
        lifted = lift_restricted_word(
            net, configuration, [transition, transition], restricted_states=["a", "b"]
        )
        assert lifted["x"] >= configuration["x"] - 2 * net.max_value
        assert lifted.restrict(["a", "b"]) == from_counts(b=2)
