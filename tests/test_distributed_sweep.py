"""Tests for the fault-tolerant distributed sweep layer.

The load-bearing properties:

* the sqlite store honors the full :class:`ResultStore` contract (register /
  mark / round-trip / foreign-spec rejection) on top of its claim semantics,
* claims are **atomic and exclusive**: concurrent claimants never receive the
  same cell, expired leases are recoverable, and commits are owner-guarded so
  a reclaimed cell can never be double-committed,
* failures retry with exponential backoff and park as terminal ``error``
  rows when retries are exhausted,
* every fault-injection point (`before-claim-commit`, `mid-cell`,
  `before-result-write`, `heartbeat-loss`) provably loses no cell and
  double-commits none,
* a drained claim store — single-runner, multi-runner, or killed-and-resumed
  — exports **byte-identically** to a single-process serial sweep's CSV.
"""

import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.sweep import (
    CsvResultStore,
    FaultPlan,
    FaultRule,
    InjectedFault,
    SqliteResultStore,
    StoreCorruptionError,
    SweepRunner,
    SweepSpec,
    claim_worker,
    fault_point,
    install_fault_plan,
    open_store,
)
from repro.sweep.cli import main as sweep_main
from repro.sweep.dbstore import BOOKKEEPING_COLUMNS
from repro.sweep.runner import CellExecutionError
from repro.sweep.store import COLUMNS, STATUS_DONE, STATUS_ERROR, STATUS_RUNNING


@pytest.fixture(autouse=True)
def _pristine_fault_state():
    """Every test starts and ends with no fault plan installed."""
    install_fault_plan(None)
    yield
    install_fault_plan(None)


def _small_spec(**overrides):
    """A fast 2-protocol x 2-population x 2-engine grid (8 cells)."""
    options = dict(
        protocols=("majority", ("modulo", {"modulus": 2, "remainder": 0})),
        populations=(8, 12),
        schedulers=("uniform",),
        engines=("compiled", "reference"),
        repetitions=2,
        master_seed=42,
        max_steps=300,
        stability_window=50,
    )
    options.update(overrides)
    return SweepSpec(**options)


def _tiny_spec(**overrides):
    """A 2-cell grid for subprocess chaos tests."""
    options = dict(
        protocols=("majority",),
        populations=(8, 12),
        engines=("reference",),
        repetitions=2,
        master_seed=7,
        max_steps=300,
        stability_window=50,
    )
    options.update(overrides)
    return SweepSpec(**options)


class _FakeClock:
    """An injectable wall clock for lease/backoff tests."""

    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class _Stats:
    """A minimal ConvergenceStatistics stand-in for store-level tests."""

    runs = 2
    converged = 2
    convergence_rate = 1.0
    mean_steps = 3.0
    median_steps = 3.0
    min_steps = 3
    max_steps = 3
    mean_consensus_step = 1.0


def _registered_store(tmp_path, spec, name="grid.sqlite", **options):
    store = SqliteResultStore(tmp_path / name, **options)
    for cell in spec.cells():
        store.ensure(cell.cell_id, cell.keyfields(), spec.cell_seed(cell))
    return store


def _serial_reference(tmp_path, spec, name="ref.csv"):
    """The byte-identity baseline: a single-process serial sweep's CSV."""
    store = CsvResultStore(tmp_path / name)
    SweepRunner(spec, store, backend="serial").run(on_error="continue")
    return tmp_path / name


def _export_csv(sqlite_path, csv_path):
    source = SqliteResultStore(sqlite_path)
    try:
        out = CsvResultStore(csv_path)
        out.import_rows(source.rows())
        out.flush()
    finally:
        source.close()
    return csv_path


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_render_round_trip(self):
        text = "mid-cell@1:kill;heartbeat-loss@2:drop;before-claim-commit@3:raise"
        plan = FaultPlan.parse(text)
        assert plan.render() == text
        assert FaultPlan.parse(plan.render()) == plan
        assert plan.action_for("mid-cell", 1) == "kill"
        assert plan.action_for("mid-cell", 2) is None

    def test_empty_and_whitespace_plans(self):
        assert FaultPlan.parse("").empty
        assert FaultPlan.parse(" ; ; ").empty
        assert FaultPlan.parse(" mid-cell@1:raise ; ").rules == (
            FaultRule("mid-cell", 1, "raise"),
        )

    def test_malformed_plans_fail_loudly(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.parse("mid-cell:raise")
        with pytest.raises(ValueError, match="not an integer"):
            FaultPlan.parse("mid-cell@one:raise")
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultPlan.parse("nowhere@1:raise")
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultPlan.parse("mid-cell@1:explode")
        with pytest.raises(ValueError, match="positive"):
            FaultRule("mid-cell", 0, "raise")
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([FaultRule("mid-cell", 1, "raise"),
                       FaultRule("mid-cell", 1, "drop")])

    def test_seeded_plans_are_reproducible(self):
        first = FaultPlan.seeded(99, count=3, actions=("raise", "drop"))
        second = FaultPlan.seeded(99, count=3, actions=("raise", "drop"))
        assert first == second
        assert len(first.rules) == 3
        assert FaultPlan.seeded(100, count=3) != first

    def test_fault_point_counts_hits_and_raises_on_schedule(self):
        install_fault_plan("mid-cell@2:raise")
        assert fault_point("mid-cell") is True
        with pytest.raises(InjectedFault) as caught:
            fault_point("mid-cell")
        assert caught.value.point == "mid-cell"
        assert caught.value.hit == 2
        assert fault_point("mid-cell") is True

    def test_drop_is_one_shot_except_heartbeat_loss(self):
        install_fault_plan("before-result-write@1:drop;heartbeat-loss@1:drop")
        assert fault_point("before-result-write") is False
        assert fault_point("before-result-write") is True
        assert fault_point("heartbeat-loss") is False
        assert fault_point("heartbeat-loss") is False

    def test_plan_arrives_through_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "mid-cell@1:raise")
        install_fault_plan(None)
        with pytest.raises(InjectedFault):
            fault_point("mid-cell")

    def test_unknown_point_is_rejected_at_evaluation(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            fault_point("everywhere")


# ----------------------------------------------------------------------
# The ResultStore contract on sqlite
# ----------------------------------------------------------------------
class TestSqliteStoreContract:
    def test_open_store_dispatches_sqlite_suffixes(self, tmp_path):
        for name in ("a.sqlite", "b.sqlite3", "c.db"):
            store = open_store(tmp_path / name)
            assert isinstance(store, SqliteResultStore)
            store.close()

    def test_rows_round_trip_including_unsigned_64bit_seeds(self, tmp_path):
        spec = _small_spec()
        store = _registered_store(tmp_path, spec)
        cells = spec.cells()
        seeds = [spec.cell_seed(cell) for cell in cells]
        # The sha256-derived seeds overflow sqlite's signed INTEGER; at
        # least one must exercise the TEXT round trip to prove it.
        assert any(seed > 2**63 - 1 for seed in seeds)
        store.mark_running(cells[0].cell_id)
        store.mark_done(cells[0].cell_id, _Stats())
        store.mark_error(cells[1].cell_id, "ValueError: bad,\r\nline two")
        store.close()

        reopened = SqliteResultStore(tmp_path / "grid.sqlite")
        rows = reopened.rows()
        assert [row["cell"] for row in rows] == [cell.cell_id for cell in cells]
        assert [row["seed"] for row in rows] == seeds
        done = reopened.get(cells[0].cell_id)
        assert done["status"] == STATUS_DONE
        assert done["mean_steps"] == 3.0 and done["runs"] == 2
        error = reopened.get(cells[1].cell_id)
        assert error["status"] == STATUS_ERROR
        assert error["error"] == "ValueError: bad,\\nline two"
        assert len(reopened) == len(cells)
        assert cells[0].cell_id in reopened
        reopened.close()

    def test_foreign_spec_is_rejected(self, tmp_path):
        spec = _small_spec()
        store = _registered_store(tmp_path, spec)
        store.close()
        other = _small_spec(master_seed=43)
        reopened = SqliteResultStore(tmp_path / "grid.sqlite")
        cell = other.cells()[0]
        with pytest.raises(StoreCorruptionError, match="different master seed"):
            reopened.ensure(cell.cell_id, cell.keyfields(), other.cell_seed(cell))
        reopened.close()

    def test_concurrent_registration_is_idempotent(self, tmp_path):
        spec = _small_spec()
        first = _registered_store(tmp_path, spec)
        second = SqliteResultStore(tmp_path / "grid.sqlite")
        for cell in spec.cells():
            assert not second.ensure(
                cell.cell_id, cell.keyfields(), spec.cell_seed(cell)
            )
        assert len(second) == len(spec.cells())
        first.close()
        second.close()

    def test_export_bridge_matches_csv_store_bytes(self, tmp_path):
        spec = _small_spec()
        reference = _serial_reference(tmp_path, spec)
        sqlite_store = CsvResultStore(reference)  # reload for rows
        db = SqliteResultStore(tmp_path / "grid.sqlite")
        db.import_rows(sqlite_store.rows())
        exported = _export_csv(tmp_path / "grid.sqlite", tmp_path / "out.csv")
        db.close()
        assert exported.read_bytes() == reference.read_bytes()


# ----------------------------------------------------------------------
# Claim semantics
# ----------------------------------------------------------------------
class TestClaimLifecycle:
    def test_claims_are_exclusive_and_grid_ordered(self, tmp_path):
        spec = _small_spec()
        store = _registered_store(tmp_path, spec)
        cells = [cell.cell_id for cell in spec.cells()]
        first = store.claim_next("a")
        second = store.claim_next("b")
        assert first.cell == cells[0]
        assert second.cell == cells[1]
        assert first.owner == "a" and second.owner == "b"
        assert first.seed == spec.cell_seed(spec.cells()[0])
        assert first.keyfields == spec.cells()[0].keyfields()
        assert store.status(first.cell) == STATUS_RUNNING
        store.close()

    def test_concurrent_claimants_never_double_claim(self, tmp_path):
        spec = _small_spec()
        store = _registered_store(tmp_path, spec)
        store.close()
        claimed = {}

        def drain(owner):
            mine = []
            connection = SqliteResultStore(tmp_path / "grid.sqlite")
            try:
                while True:
                    claim = connection.claim_next(owner)
                    if claim is None:
                        break
                    mine.append(claim.cell)
            finally:
                connection.close()
            claimed[owner] = mine

        threads = [
            threading.Thread(target=drain, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        cells = [claim for claims in claimed.values() for claim in claims]
        assert len(cells) == len(spec.cells())
        assert len(set(cells)) == len(cells)

    def test_expired_lease_is_reclaimable_and_late_commit_refused(self, tmp_path):
        clock = _FakeClock()
        spec = _tiny_spec()
        store = _registered_store(
            tmp_path, spec, lease_seconds=10, clock=clock
        )
        stale = store.claim_next("dead-runner")
        assert store.claim_next("live-runner") .cell != stale.cell
        clock.advance(11)
        reclaimed = store.claim_next("live-runner")
        assert reclaimed.cell == stale.cell
        assert reclaimed.attempt == stale.attempt + 1
        # The dead runner wakes up and tries to commit: refused, no
        # double-commit possible.
        assert store.finish_claim(stale, _Stats()) is False
        assert store.finish_claim(reclaimed, _Stats()) is True
        assert store.status(stale.cell) == STATUS_DONE
        done_rows = [r for r in store.rows() if r["status"] == STATUS_DONE]
        assert len(done_rows) == 1
        store.close()

    def test_heartbeat_extends_lease(self, tmp_path):
        clock = _FakeClock()
        spec = _tiny_spec()
        store = _registered_store(tmp_path, spec, lease_seconds=10, clock=clock)
        claim = store.claim_next("a")
        clock.advance(8)
        assert store.heartbeat(claim) is True
        clock.advance(8)  # 16s total: dead without the heartbeat at t+8
        assert store.claim_next("b").cell != claim.cell
        assert store.finish_claim(claim, _Stats()) is True
        store.close()

    def test_heartbeat_loss_partitions_the_owner(self, tmp_path):
        clock = _FakeClock()
        spec = _tiny_spec()
        store = _registered_store(tmp_path, spec, lease_seconds=10, clock=clock)
        claim = store.claim_next("partitioned")
        install_fault_plan("heartbeat-loss@1:drop")
        clock.advance(8)
        assert store.heartbeat(claim) is True  # the beat silently vanished
        clock.advance(4)
        reclaimed = store.claim_next("healthy")
        assert reclaimed.cell == claim.cell
        # The partitioned owner finishes its (now orphaned) work: refused.
        assert store.finish_claim(claim, _Stats()) is False
        assert store.finish_claim(reclaimed, _Stats()) is True
        store.close()

    def test_failures_back_off_exponentially_then_park(self, tmp_path):
        clock = _FakeClock()
        spec = _tiny_spec(populations=(8,))
        store = _registered_store(
            tmp_path, spec, lease_seconds=10, max_retries=2, backoff_base=5,
            clock=clock,
        )
        claim = store.claim_next("a")
        assert store.fail_claim(claim, "boom") == "retry"
        bookkeeping = store.bookkeeping(claim.cell)
        assert bookkeeping["retry_count"] == 1
        assert bookkeeping["next_attempt"] == clock.now + 5
        assert store.claim_next("a") is None  # backoff not yet elapsed
        clock.advance(6)
        claim = store.claim_next("a")
        assert claim.attempt == 1
        assert store.fail_claim(claim, "boom") == "retry"
        assert store.bookkeeping(claim.cell)["next_attempt"] == clock.now + 10
        clock.advance(11)
        claim = store.claim_next("a")
        assert store.fail_claim(claim, "boom") == "parked"
        row = store.get(claim.cell)
        assert row["status"] == STATUS_ERROR and row["error"] == "boom"
        assert store.bookkeeping(claim.cell)["next_attempt"] is None
        clock.advance(10**6)
        assert store.claim_next("a") is None  # parked rows stay parked
        assert store.unresolved_count() == 0
        store.close()

    def test_repeated_lease_expiry_parks_poison_cells(self, tmp_path):
        clock = _FakeClock()
        spec = _tiny_spec(populations=(8,))
        store = _registered_store(
            tmp_path, spec, lease_seconds=5, max_retries=1, clock=clock
        )
        claim = store.claim_next("crashy")
        clock.advance(6)
        claim = store.claim_next("crashy")  # reclaim #1
        assert claim.attempt == 1
        clock.advance(6)
        # Reclaim #2 would exceed max_retries: parked at claim time.
        assert store.claim_next("crashy") is None
        row = store.get(claim.cell)
        assert row["status"] == STATUS_ERROR
        assert "lease expired" in row["error"]
        assert store.unresolved_count() == 0
        store.close()

    def test_release_claim_hands_back_cleanly(self, tmp_path):
        spec = _tiny_spec(populations=(8,))
        store = _registered_store(tmp_path, spec)
        claim = store.claim_next("a")
        assert store.release_claim(claim) is True
        assert store.status(claim.cell) == "created"
        assert store.bookkeeping(claim.cell)["retry_count"] == 0
        again = store.claim_next("b")
        assert again.cell == claim.cell and again.attempt == 0
        assert store.release_claim(claim) is False  # no longer held
        store.close()

    def test_fail_claim_after_reclaim_is_lost(self, tmp_path):
        clock = _FakeClock()
        spec = _tiny_spec(populations=(8,))
        store = _registered_store(tmp_path, spec, lease_seconds=5, clock=clock)
        stale = store.claim_next("dead")
        clock.advance(6)
        live = store.claim_next("live")
        assert store.fail_claim(stale, "late failure") == "lost"
        assert store.finish_claim(live, _Stats()) is True
        store.close()

    def test_bookkeeping_stays_out_of_rows(self, tmp_path):
        spec = _tiny_spec(populations=(8,))
        store = _registered_store(tmp_path, spec)
        claim = store.claim_next("a")
        store.finish_claim(claim, _Stats())
        (row,) = store.rows()
        assert set(row) == set(COLUMNS)
        assert not set(BOOKKEEPING_COLUMNS) & set(row)
        store.close()

    def test_store_clock_is_clamped_to_a_monotonic_floor(self, tmp_path):
        # Regression: lease/backoff arithmetic used to read the wall clock
        # raw; a backwards NTP step retreated every timestamp.  The store
        # now clamps any clock source (injected fakes included) with
        # max(last_returned, now).
        clock = _FakeClock()
        spec = _tiny_spec(populations=(8,))
        store = _registered_store(tmp_path, spec, clock=clock)
        assert store._clock() == 1000.0
        clock.advance(-250)  # the wall steps backwards
        assert store._clock() == 1000.0  # held at the floor
        clock.advance(300)  # raw 1050: the wall caught back up
        assert store._clock() == 1050.0
        store.close()

    def test_backwards_clock_step_cannot_break_a_live_lease(self, tmp_path):
        # Claim at t=1000, wall steps back to t=900, the owner heartbeats.
        # Unclamped, the renewal would set lease_expires = 910 — so when the
        # wall recovers to 1005 the lease looks expired and a second runner
        # reclaims a cell that is actively being computed.  The clamp renews
        # from the floor: the lease holds to 1010.
        clock = _FakeClock()
        spec = _tiny_spec()
        store = _registered_store(tmp_path, spec, lease_seconds=10, clock=clock)
        claim = store.claim_next("owner")
        clock.advance(-100)
        assert store.heartbeat(claim) is True
        clock.now = 1005.0  # the wall recovers, 5s after the claim
        other = store.claim_next("thief")
        assert other is not None and other.cell != claim.cell
        assert store.claim_next("thief") is None  # nothing expired
        assert store.finish_claim(claim, _Stats()) is True
        store.close()

    def test_backoff_survives_a_backwards_clock_step(self, tmp_path):
        clock = _FakeClock()
        spec = _tiny_spec(populations=(8,))
        store = _registered_store(
            tmp_path, spec, lease_seconds=10, max_retries=2, backoff_base=5,
            clock=clock,
        )
        claim = store.claim_next("a")
        assert store.fail_claim(claim, "boom") == "retry"  # next_attempt 1005
        clock.advance(-500)
        assert store.claim_next("a") is None  # clamped to 1000: still backing off
        clock.now = 1006.0  # past the backoff deadline
        retried = store.claim_next("a")
        assert retried is not None and retried.attempt == 1
        store.close()


# ----------------------------------------------------------------------
# Claim-commit fault points
# ----------------------------------------------------------------------
class TestClaimFaultPoints:
    def test_fault_before_claim_commit_loses_nothing(self, tmp_path):
        spec = _tiny_spec(populations=(8,))
        store = _registered_store(tmp_path, spec)
        install_fault_plan("before-claim-commit@1:raise")
        with pytest.raises(InjectedFault):
            store.claim_next("a")
        # The transaction rolled back: the cell is still claimable, by
        # anyone, with no retry consumed.
        assert store.status(spec.cells()[0].cell_id) == "created"
        claim = store.claim_next("b")
        assert claim is not None and claim.attempt == 0
        assert store.finish_claim(claim, _Stats()) is True
        store.close()

    def test_fault_before_result_write_recovers_by_recompute(self, tmp_path):
        clock = _FakeClock()
        spec = _tiny_spec(populations=(8,))
        store = _registered_store(tmp_path, spec, lease_seconds=5, clock=clock)
        install_fault_plan("before-result-write@1:drop")
        claim = store.claim_next("a")
        assert store.finish_claim(claim, _Stats()) is False  # commit lost
        assert store.status(claim.cell) == STATUS_RUNNING
        clock.advance(6)  # lease expires, the cell is recomputed
        again = store.claim_next("a")
        assert again.cell == claim.cell
        assert store.finish_claim(again, _Stats()) is True
        done = [r for r in store.rows() if r["status"] == STATUS_DONE]
        assert len(done) == 1
        store.close()


# ----------------------------------------------------------------------
# The claim loop
# ----------------------------------------------------------------------
class TestRunClaims:
    def test_single_claim_runner_matches_serial_sweep_bytes(self, tmp_path):
        spec = _small_spec()
        reference = _serial_reference(tmp_path, spec)
        store = SqliteResultStore(tmp_path / "grid.sqlite")
        report = SweepRunner(spec, store, backend="serial").run_claims("r0")
        store.close()
        assert report.executed == len(spec.cells())
        assert report.drained and report.lost == 0 and report.parked == 0
        exported = _export_csv(tmp_path / "grid.sqlite", tmp_path / "dist.csv")
        assert exported.read_bytes() == reference.read_bytes()

    def test_requires_a_claim_capable_store(self, tmp_path):
        spec = _tiny_spec()
        store = CsvResultStore(tmp_path / "grid.csv")
        with pytest.raises(TypeError, match="claim-capable"):
            SweepRunner(spec, store, backend="serial").run_claims("r0")

    def test_mid_cell_fault_retries_and_still_matches_bytes(self, tmp_path):
        spec = _small_spec()
        reference = _serial_reference(tmp_path, spec)
        store = SqliteResultStore(
            tmp_path / "grid.sqlite", lease_seconds=30, backoff_base=0.05
        )
        install_fault_plan("mid-cell@2:raise;mid-cell@5:raise")
        report = SweepRunner(spec, store, backend="serial").run_claims(
            "r0", idle_wait=0.05
        )
        store.close()
        assert report.retried == 2
        assert report.executed == len(spec.cells())
        assert report.drained
        exported = _export_csv(tmp_path / "grid.sqlite", tmp_path / "dist.csv")
        assert exported.read_bytes() == reference.read_bytes()

    def test_lost_commit_recomputes_to_identical_bytes(self, tmp_path):
        spec = _small_spec()
        reference = _serial_reference(tmp_path, spec)
        store = SqliteResultStore(
            tmp_path / "grid.sqlite", lease_seconds=0.3, backoff_base=0.05
        )
        install_fault_plan("before-result-write@1:drop")
        report = SweepRunner(spec, store, backend="serial").run_claims(
            "r0", idle_wait=0.05, heartbeat_interval=10,
        )
        store.close()
        assert report.lost == 1
        assert report.executed == len(spec.cells())
        exported = _export_csv(tmp_path / "grid.sqlite", tmp_path / "dist.csv")
        assert exported.read_bytes() == reference.read_bytes()

    def test_failing_cells_park_and_report(self, tmp_path):
        from repro.sweep import register_sweep_protocol
        from repro.sweep.spec import _PROTOCOL_BUILDERS

        def exploding_builder(population, params):
            raise RuntimeError("cell deliberately broken")

        register_sweep_protocol(
            "always-boom-distributed",
            exploding_builder,
            allowed_params=(),
        )
        try:
            spec = SweepSpec(
                protocols=("always-boom-distributed",),
                populations=(8,),
                engines=("reference",),
                repetitions=2,
                master_seed=3,
                max_steps=100,
                stability_window=20,
            )
            store = SqliteResultStore(
                tmp_path / "grid.sqlite", max_retries=1, backoff_base=0.02
            )
            report = SweepRunner(spec, store, backend="serial").run_claims(
                "r0", idle_wait=0.02
            )
            (row,) = store.rows()
            store.close()
            assert report.parked == 1 and report.retried == 1
            assert report.executed == 0 and report.drained
            assert row["status"] == STATUS_ERROR
            assert row["error"].startswith("RuntimeError: cell deliberately")
        finally:
            _PROTOCOL_BUILDERS.pop("always-boom-distributed", None)

    def test_stop_event_drains_gracefully(self, tmp_path):
        spec = _small_spec()
        store = _registered_store(tmp_path, spec)
        stop = threading.Event()
        stop.set()
        report = SweepRunner(spec, store, backend="serial").run_claims(
            "r0", stop_event=stop
        )
        store.close()
        assert report.stopped and report.executed == 0
        # Nothing was claimed: every cell is still open for other runners.
        reopened = SqliteResultStore(tmp_path / "grid.sqlite")
        assert reopened.status_counts() == {"created": len(spec.cells())}
        reopened.close()

    def test_max_cells_bounds_the_loop(self, tmp_path):
        spec = _small_spec()
        store = _registered_store(tmp_path, spec)
        report = SweepRunner(spec, store, backend="serial").run_claims(
            "r0", max_cells=3
        )
        store.close()
        assert report.executed == 3 and not report.drained

    def test_cell_execution_error_carries_context(self):
        cause = ValueError("engine exploded")
        error = CellExecutionError("cell-1", cause)
        assert error.cell_id == "cell-1"
        assert error.cause is cause
        assert str(error) == "ValueError: engine exploded"


# ----------------------------------------------------------------------
# Kill-anywhere / resume-anywhere (real processes, real SIGKILL)
# ----------------------------------------------------------------------
def _run_claim_worker(spec_json, store_path, owner, fault_plan):
    claim_worker(
        spec_json,
        store_path,
        owner,
        backend="serial",
        lease_seconds=1.0,
        backoff_base=0.05,
        idle_wait=0.05,
        fault_plan=fault_plan,
    )


class TestKillAndResume:
    def test_sigkilled_runner_resumes_to_identical_bytes(self, tmp_path):
        spec = _tiny_spec()
        reference = _serial_reference(tmp_path, spec)
        store_path = str(tmp_path / "grid.sqlite")
        # Runner 1 SIGKILLs itself mid-cell (claim held, nothing written).
        victim = multiprocessing.Process(
            target=_run_claim_worker,
            args=(spec.to_json(), store_path, "victim", "mid-cell@1:kill"),
        )
        victim.start()
        victim.join(60)
        assert victim.exitcode == -signal.SIGKILL
        # Its claim is stranded as a leased `running` row.
        stranded = SqliteResultStore(store_path)
        assert stranded.status_counts().get(STATUS_RUNNING) == 1
        assert stranded.unresolved_count() == len(spec.cells())
        stranded.close()
        # Restart: the fresh runner waits out the lease, adopts the cell,
        # and drains the grid.
        claim_worker(
            spec.to_json(), store_path, "revived",
            backend="serial", lease_seconds=1.0, idle_wait=0.05,
        )
        exported = _export_csv(Path(store_path), tmp_path / "dist.csv")
        assert exported.read_bytes() == reference.read_bytes()

    def test_surviving_runner_adopts_killed_peers_cells(self, tmp_path):
        spec = _tiny_spec()
        reference = _serial_reference(tmp_path, spec)
        store_path = str(tmp_path / "grid.sqlite")
        victim = multiprocessing.Process(
            target=_run_claim_worker,
            args=(spec.to_json(), store_path, "victim", "mid-cell@1:kill"),
        )
        survivor = multiprocessing.Process(
            target=_run_claim_worker,
            args=(spec.to_json(), store_path, "survivor", None),
        )
        victim.start()
        survivor.start()
        victim.join(60)
        survivor.join(60)
        assert victim.exitcode == -signal.SIGKILL
        assert survivor.exitcode == 0
        exported = _export_csv(Path(store_path), tmp_path / "dist.csv")
        assert exported.read_bytes() == reference.read_bytes()

    def test_sigterm_drains_gracefully(self, tmp_path):
        # A large grid so the runner is mid-drain when the signal lands.
        spec = _small_spec(repetitions=4)
        store_path = str(tmp_path / "grid.sqlite")
        process = multiprocessing.Process(
            target=_run_claim_worker,
            args=(spec.to_json(), store_path, "drainer", None),
        )
        process.start()
        time.sleep(0.5)
        process.terminate()  # SIGTERM
        process.join(60)
        assert process.exitcode == 0  # graceful exit, not a signal death
        store = SqliteResultStore(store_path)
        counts = store.status_counts()
        store.close()
        # Whatever completed is committed; nothing is stranded running.
        assert counts.get(STATUS_RUNNING) is None


# ----------------------------------------------------------------------
# CLI: workers launcher and export
# ----------------------------------------------------------------------
class TestWorkersCli:
    def _write_spec(self, tmp_path, spec):
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        return str(path)

    def test_two_launched_runners_match_serial_bytes(self, tmp_path, capsys):
        spec = _tiny_spec()
        reference = _serial_reference(tmp_path, spec)
        spec_file = self._write_spec(tmp_path, spec)
        store = str(tmp_path / "grid.sqlite")
        rc = sweep_main([
            "workers", "--spec", spec_file, "--store", store,
            "--runners", "2", "--backend", "serial", "--lease", "5",
            "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 unresolved" in out
        rc = sweep_main(["export", "--store", store, "--to",
                         str(tmp_path / "dist.csv")])
        assert rc == 0
        assert (tmp_path / "dist.csv").read_bytes() == reference.read_bytes()

    def test_workers_rejects_non_sqlite_stores(self, tmp_path, capsys):
        spec_file = self._write_spec(tmp_path, _tiny_spec())
        rc = sweep_main([
            "workers", "--spec", spec_file,
            "--store", str(tmp_path / "grid.csv"),
        ])
        assert rc == 2
        assert "claim-capable" in capsys.readouterr().err

    def test_workers_reports_missing_spec(self, tmp_path, capsys):
        rc = sweep_main([
            "workers", "--spec", str(tmp_path / "nope.json"),
            "--store", str(tmp_path / "grid.sqlite"),
        ])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_export_round_trips_between_formats(self, tmp_path):
        spec = _tiny_spec()
        reference = _serial_reference(tmp_path, spec)
        rc = sweep_main(["export", "--store", str(reference),
                         "--to", str(tmp_path / "grid.sqlite")])
        assert rc == 0
        rc = sweep_main(["export", "--store", str(tmp_path / "grid.sqlite"),
                         "--to", str(tmp_path / "back.csv")])
        assert rc == 0
        assert (tmp_path / "back.csv").read_bytes() == reference.read_bytes()

    def test_run_subcommand_accepts_sqlite_stores(self, tmp_path, capsys):
        spec = _tiny_spec()
        reference = _serial_reference(tmp_path, spec)
        spec_file = self._write_spec(tmp_path, spec)
        store = str(tmp_path / "grid.sqlite")
        rc = sweep_main([
            "run", "--spec", spec_file, "--store", store,
            "--backend", "serial", "--quiet",
        ])
        assert rc == 0
        exported = _export_csv(Path(store), tmp_path / "dist.csv")
        assert exported.read_bytes() == reference.read_bytes()
