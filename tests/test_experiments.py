"""Tests for the experiment harness and the E1..E11 experiment definitions."""

import random

import pytest

from repro.experiments import (
    ExperimentTable,
    experiment_e1_state_counts,
    experiment_e2_theorem_4_3,
    experiment_e3_lower_bounds,
    experiment_e4_rackoff,
    experiment_e5_stability,
    experiment_e6_bottom,
    experiment_e7_cycles,
    experiment_e8_verification,
    experiment_e9_simulation_throughput,
    experiment_e10_parallel_batch,
    experiment_e11_large_net_throughput,
    experiment_e12_parameter_sweep,
    experiment_e14_ensemble_throughput,
    random_interaction_protocol,
    registry,
)


class TestHarness:
    def test_add_row_requires_all_columns(self):
        table = ExperimentTable("X", "test", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(a=1)
        table.add_row(a=1, b=2)
        assert len(table) == 1

    def test_add_row_rejects_unexpected_columns(self):
        # Regression: unknown keys used to be accepted silently and then
        # dropped by render()/column().
        table = ExperimentTable("X", "test", columns=["a", "b"])
        with pytest.raises(ValueError, match="unexpected"):
            table.add_row(a=1, b=2, c=3)
        assert len(table) == 0

    def test_column_extraction(self):
        table = ExperimentTable("X", "test", columns=["a"])
        table.add_row(a=1)
        table.add_row(a=2)
        assert table.column("a") == [1, 2]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_render_contains_header_and_rows(self):
        table = ExperimentTable("X", "test title", columns=["a"], notes="a note")
        table.add_row(a=3.14159)
        text = table.render()
        assert "X: test title" in text
        assert "3.14" in text
        assert "a note" in text

    def test_registry_contains_all_experiments(self):
        assert set(registry.ids()) == {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11",
            "E12", "E13", "E14",
        }

    def test_registry_unknown_experiment(self):
        with pytest.raises(KeyError):
            registry.run("E99")

    def test_registry_rejects_duplicates(self):
        with pytest.raises(ValueError):
            registry.register("E1")(lambda: None)


class TestExperimentE1:
    def test_shape_and_monotonicity(self):
        table = experiment_e1_state_counts(thresholds=(4, 16, 256, 65536), build_protocols_up_to=32)
        assert len(table) == 4
        classic = table.column("classic (n+1)")
        succinct = table.column("BEJ leaderless O(log n)")
        loglog = table.column("BEJ leaders O(log log n)")
        # The shape the paper is about: classic >> log n >> log log n for large n.
        assert classic[-1] > succinct[-1] > loglog[-1]
        # Examples 4.1 / 4.2 have constant state counts.
        assert set(table.column("example 4.1 (width n)")) == {2}
        assert set(table.column("example 4.2 (n leaders)")) == {6}

    def test_lower_bound_never_exceeds_upper_bound(self):
        table = experiment_e1_state_counts(thresholds=(2 ** 16, 2 ** 64), build_protocols_up_to=1)
        lower = table.column("Cor. 4.4 lower bound (h=0.49)")
        upper = table.column("BEJ leaderless O(log n)")
        assert all(l <= u for l, u in zip(lower, upper))


class TestExperimentE2:
    def test_log_log_bound_grows_with_states(self):
        table = experiment_e2_theorem_4_3(state_counts=(1, 2, 3, 4, 8), bound_parameters=(2,))
        values = table.column("log2 log2 bound (m=2)")
        assert all(a <= b for a, b in zip(values, values[1:]))


class TestExperimentE3:
    def test_paper_bound_eventually_dominates_czerner_esparza(self):
        # The inverse-Ackermann bound is stuck at <= 3; the paper's bound grows
        # like (log log n)^h and overtakes it for huge n (around j ~ 30 for
        # h = 0.49 and m = 2).
        table = experiment_e3_lower_bounds(exponents=(6, 40, 80))
        leroux = table.column("Leroux h=0.49")
        czerner = table.column("Czerner-Esparza A^{-1}(n)")
        assert all(c <= 3 for c in czerner)
        assert leroux[-1] > czerner[-1]
        # Monotone growth of the paper's bound along the family.
        assert leroux[0] <= leroux[1] <= leroux[2]

    def test_lower_bounds_below_upper_bound(self):
        table = experiment_e3_lower_bounds(exponents=(6, 10, 16))
        leroux = table.column("Leroux h=0.49")
        upper = table.column("BEJ upper (leaders)")
        assert all(l <= u for l, u in zip(leroux, upper))


class TestExperimentE4:
    def test_measured_lengths_below_rackoff_bound(self):
        table = experiment_e4_rackoff()
        import math

        for row in table.rows:
            assert row["measured length"] >= 0
            assert math.log2(max(row["measured length"], 1)) <= row["log2 Rackoff bound"]


class TestExperimentE5:
    def test_certificates_agree_with_exact_checks(self):
        table = experiment_e5_stability(leader_counts=(1, 2), extra_agents=2)
        for row in table.rows:
            assert row["certified"] == row["agreement"]
            assert row["certified"] <= row["checked"]


class TestExperimentE6:
    def test_witness_found_and_small(self):
        table = experiment_e6_bottom(leader_counts=(1,), max_nodes=5000)
        (row,) = table.rows
        assert row["|sigma|"] >= 0
        assert row["component size"] >= 1
        # The measured sizes are minuscule compared to the bound b.
        assert row["|sigma|"] + row["|w|"] + row["component size"] < row["log2 bound b"]


class TestExperimentE7:
    def test_total_cycles_within_bound(self):
        table = experiment_e7_cycles()
        assert len(table) >= 2
        assert all(row["within bound"] for row in table.rows)


class TestExperimentE8:
    def test_all_constructions_verify(self):
        table = experiment_e8_verification(
            flock_thresholds=(1, 2),
            example_4_1_thresholds=(1, 2),
            example_4_2_thresholds=(1,),
            succinct_thresholds=(2, 3),
            extra_agents=1,
        )
        assert all(row["failures"] == 0 for row in table.rows)
        assert all(row["inputs"] > 0 for row in table.rows)


class TestExperimentE9:
    def test_engines_agree_and_rows_are_paired(self):
        table = experiment_e9_simulation_throughput(populations=(60,), max_steps=1500)
        assert len(table) == 2
        by_engine = {row["engine"]: row for row in table.rows}
        assert set(by_engine) == {"reference", "compiled"}
        # The experiment raises on trajectory divergence, so both engines
        # must have sampled the same number of interactions.
        assert by_engine["reference"]["interactions"] == by_engine["compiled"]["interactions"]
        assert all(row["interactions/s"] > 0 for row in table.rows)
        assert by_engine["reference"]["speedup"] == 1.0
        assert by_engine["compiled"]["speedup"] > 0


class TestExperimentE10:
    def test_backends_agree_and_rows_are_complete(self):
        table = experiment_e10_parallel_batch(
            population=60, repetitions=6, worker_counts=(1, 2), max_steps=800
        )
        # One serial row plus one row per worker count; the experiment raises
        # if any parallel ensemble diverges from the serial one.
        assert len(table) == 3
        by_backend = {}
        for row in table.rows:
            by_backend.setdefault(row["backend"], []).append(row)
        assert set(by_backend) == {"serial", "process"}
        assert [row["workers"] for row in by_backend["process"]] == [1, 2]
        interactions = {row["interactions"] for row in table.rows}
        assert len(interactions) == 1  # identical ensembles everywhere
        assert all(row["interactions/s"] > 0 for row in table.rows)
        assert by_backend["serial"][0]["speedup"] == 1.0


class TestExperimentE11:
    def test_random_protocol_generator_hits_the_requested_size(self):
        protocol, inputs = random_interaction_protocol(40, random.Random(1))
        net = protocol.petri_net
        assert net.num_transitions == 40
        assert net.is_conservative()
        assert net.width == 2
        # Every state starts populated, so every transition is enabled.
        assert len(net.enabled_transitions(protocol.initial_configuration(inputs))) == 40

    def test_reduced_sweep_cross_checks_engines(self):
        # A tiny sweep: the experiment raises internally if any engine
        # diverges from the compiled trajectory, so a clean table is itself
        # the equivalence assertion.  The numpy rows appear only when the
        # optional dependency is installed.
        table = experiment_e11_large_net_throughput(
            transition_counts=(20, 40), max_steps=300, reference_up_to=40
        )
        by_group = {}
        for row in table.rows:
            by_group.setdefault(row["transitions"], {})[row["engine"]] = row
        assert set(by_group) == {20, 40}
        for transitions, engines in by_group.items():
            assert {"reference", "compiled"} <= set(engines)
            assert engines["compiled"]["speedup"] == 1.0
            assert engines["compiled"]["baseline"] == "compiled"
            measured = {row["interactions"] for row in engines.values()}
            assert len(measured) == 1  # identical trajectories everywhere

    def test_fallback_baseline_labels_rows_when_codegen_is_unavailable(self):
        # Above compiled_up_to the compiled denominator does not exist; the
        # measured engines must still report a speedup, against a labeled
        # reference-engine baseline extrapolated from a short run, instead
        # of the empty cells this sweep point used to produce.
        table = experiment_e11_large_net_throughput(
            transition_counts=(30,),
            max_steps=200,
            reference_up_to=40,
            compiled_up_to=20,
            reference_fallback_steps=50,
        )
        rows = {row["engine"]: row for row in table.rows}
        assert rows["compiled"]["speedup"] is None
        assert rows["compiled"]["baseline"] is None
        reference_row = rows["reference"]
        assert reference_row["baseline"].startswith("reference (extrapolated")
        assert reference_row["speedup"] is not None
        assert reference_row["speedup"] > 0


class TestExperimentE14:
    def test_reduced_sweep_is_bit_identical_and_reports_speedups(self):
        pytest.importorskip("numpy", reason="E14 measures the ensemble engine")
        # The experiment raises internally unless every ensemble row is
        # bit-identical to its per-run NumPy counterpart, so a clean table
        # is itself the equivalence assertion.
        table = experiment_e14_ensemble_throughput(
            transition_counts=(60, 300),
            repetition_counts=(4,),
            max_steps=80,
        )
        assert len(table) == 4
        rows = {
            (row["transitions"], row["engine"]): row for row in table.rows
        }
        for transitions in (60, 300):
            assert rows[(transitions, "numpy")]["speedup"] == 1.0
            assert rows[(transitions, "ensemble")]["speedup"] > 0
            assert (
                rows[(transitions, "numpy")]["interactions"]
                == rows[(transitions, "ensemble")]["interactions"]
                == 4 * 80
            )


class TestExperimentE12:
    def test_reduced_sweep_agrees_across_engines_and_persists(self, tmp_path):
        # A tiny grid through the sweep harness: the experiment raises
        # internally if engine rows of one grid point report different
        # ensemble statistics, so a returned table is itself the agreement
        # assertion.  With store_path the table is also persisted on disk.
        store_path = tmp_path / "e12.csv"
        table = experiment_e12_parameter_sweep(
            populations=(12, 16), repetitions=2, max_steps=1500,
            stability_window=200, store_path=str(store_path),
        )
        assert len(table) == 2 * 2 * 2  # protocols x populations x engines
        assert set(table.column("status")) == {"done"}
        assert store_path.exists()
        # Resuming the same experiment against the persisted store skips
        # every cell and returns the identical table.
        first_bytes = store_path.read_bytes()
        again = experiment_e12_parameter_sweep(
            populations=(12, 16), repetitions=2, max_steps=1500,
            stability_window=200, store_path=str(store_path),
        )
        assert store_path.read_bytes() == first_bytes
        assert again.rows == table.rows
