"""Unit tests for repro.algebra.vectors."""

import pytest

from repro.algebra import IntVector
from repro.core import from_counts


class TestConstruction:
    def test_zero_entries_dropped(self):
        vector = IntVector({"a": 0, "b": -2})
        assert "a" not in vector.support
        assert vector["b"] == -2

    def test_zero_vector(self):
        assert IntVector.zero().is_zero()
        assert not IntVector.zero()

    def test_unit_vector(self):
        assert IntVector.unit("x")["x"] == 1
        assert IntVector.unit("x", -3)["x"] == -3

    def test_from_and_to_configuration(self):
        configuration = from_counts(i=2, p=1)
        vector = IntVector.from_configuration(configuration)
        assert vector.to_configuration() == configuration

    def test_to_configuration_rejects_negative(self):
        with pytest.raises(ValueError):
            IntVector({"a": -1}).to_configuration()


class TestNorms:
    def test_norm1(self):
        assert IntVector({"a": -2, "b": 3}).norm1 == 5
        assert IntVector.zero().norm1 == 0

    def test_norm_inf(self):
        assert IntVector({"a": -7, "b": 3}).norm_inf == 7
        assert IntVector.zero().norm_inf == 0


class TestAlgebra:
    def test_addition_and_subtraction(self):
        a = IntVector({"x": 1, "y": -2})
        b = IntVector({"y": 2, "z": 1})
        assert a + b == IntVector({"x": 1, "z": 1})
        assert a - b == IntVector({"x": 1, "y": -4, "z": -1})

    def test_negation(self):
        assert -IntVector({"x": 2, "y": -1}) == IntVector({"x": -2, "y": 1})

    def test_scalar_multiplication(self):
        assert 3 * IntVector({"x": -2}) == IntVector({"x": -6})
        assert IntVector({"x": 5}) * 0 == IntVector.zero()

    def test_dot_product(self):
        a = IntVector({"x": 2, "y": -1})
        b = IntVector({"x": 3, "y": 4, "z": 7})
        assert a.dot(b) == 2

    def test_dot_product_symmetry(self):
        a = IntVector({"x": 2, "y": -1})
        b = IntVector({"x": 3, "z": 7})
        assert a.dot(b) == b.dot(a)

    def test_sign(self):
        assert IntVector({"x": 5, "y": -3}).sign() == IntVector({"x": 1, "y": -1})


class TestOrderAndRestriction:
    def test_componentwise_order(self):
        assert IntVector({"x": -1}) <= IntVector({"x": 0})
        assert IntVector({"x": 1}) >= IntVector.zero()
        assert not IntVector({"x": 1, "y": -1}) <= IntVector({"x": 2, "y": -2})

    def test_nonnegative_and_nonpositive(self):
        assert IntVector({"x": 1}).is_nonnegative()
        assert IntVector({"x": -1}).is_nonpositive()
        assert IntVector.zero().is_nonnegative() and IntVector.zero().is_nonpositive()
        assert not IntVector({"x": 1, "y": -1}).is_nonnegative()

    def test_restrict(self):
        vector = IntVector({"x": 1, "y": 2, "z": 3})
        assert vector.restrict(["x", "z"]) == IntVector({"x": 1, "z": 3})


class TestHashing:
    def test_equal_vectors_hash_equal(self):
        assert hash(IntVector({"x": 1})) == hash(IntVector({"x": 1, "y": 0}))

    def test_usable_in_sets(self):
        assert len({IntVector({"x": 1}), IntVector({"x": 1})}) == 1
