"""Tests for the parallel batch-execution subsystem (repro.simulation.batch).

The contract under test: for a fixed ``(protocol, inputs, seed)`` the serial
and process backends return **bit-identical** result lists — same
per-repetition seeds, same per-run results, same order — regardless of worker
count or chunking.  Plus the supporting machinery: worker-count and
chunk-size edge cases, pickling of protocols and compiled nets across process
boundaries, and trajectory transport through workers.
"""

import os
import pickle
import signal
import threading
import time

import pytest

from repro.core import Configuration, from_counts
from repro.protocols import flock_of_birds_protocol, majority_protocol
from repro.simulation import (
    BatchRunner,
    Scheduler,
    Simulator,
    TransitionScheduler,
    UniformScheduler,
    WorkerCrashError,
    WorkerTimeoutError,
    run_ensemble,
)
from repro.simulation.batch import WorkerPool

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _majority_inputs(population=48):
    majority = (2 * population) // 3
    return from_counts(A=majority, B=population - majority)


class TestSerialProcessEquivalence:
    def test_64_repetition_majority_ensemble_is_bit_identical(self):
        # The acceptance-criterion ensemble: 64 seeded majority repetitions,
        # serial vs process, compared as full SimulationResult values.
        protocol = majority_protocol()
        inputs = _majority_inputs()
        serial = Simulator(protocol, seed=2022).run_many(
            inputs, repetitions=64, max_steps=2000
        )
        parallel = Simulator(protocol, seed=2022).run_many(
            inputs, repetitions=64, max_steps=2000, backend="process", max_workers=2
        )
        assert len(serial) == len(parallel) == 64
        assert parallel == serial

    def test_batch_runner_agrees_with_simulator_run_many(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(30)
        via_simulator = Simulator(protocol, seed=9).run_many(
            inputs, repetitions=10, max_steps=1500
        )
        via_runner = BatchRunner(protocol, max_workers=2).run_many(
            inputs, repetitions=10, seed=9, max_steps=1500
        )
        assert via_runner == via_simulator

    def test_chunk_size_does_not_change_results(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(24)
        baseline = BatchRunner(protocol, backend="serial").run_many(
            inputs, repetitions=9, seed=3, max_steps=1000
        )
        for chunk_size in (1, 2, 4, 9, 50):
            runner = BatchRunner(
                protocol, backend="process", max_workers=2, chunk_size=chunk_size
            )
            assert runner.run_many(inputs, repetitions=9, seed=3, max_steps=1000) == baseline

    def test_reference_engine_ensembles_agree_across_backends(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(18)
        serial = Simulator(protocol, seed=4, engine="reference").run_many(
            inputs, repetitions=6, max_steps=800
        )
        parallel = Simulator(protocol, seed=4, engine="reference").run_many(
            inputs, repetitions=6, max_steps=800, backend="process", max_workers=2
        )
        assert parallel == serial

    def test_transition_scheduler_ensembles_agree_across_backends(self):
        protocol = flock_of_birds_protocol(4)
        inputs = Configuration({1: 9})
        serial = Simulator(protocol, scheduler=TransitionScheduler(), seed=8).run_many(
            inputs, repetitions=6, max_steps=800
        )
        parallel = Simulator(protocol, scheduler=TransitionScheduler(), seed=8).run_many(
            inputs, repetitions=6, max_steps=800, backend="process", max_workers=2
        )
        assert parallel == serial

    def test_trajectories_travel_across_the_process_boundary(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(20)
        kwargs = dict(
            repetitions=5, max_steps=300, stability_window=10 ** 9,
            record_trajectory=True, trajectory_capacity=64,
        )
        serial = Simulator(protocol, seed=5).run_many(inputs, **kwargs)
        parallel = Simulator(protocol, seed=5).run_many(
            inputs, backend="process", max_workers=2, **kwargs
        )
        assert parallel == serial
        assert all(result.trajectory is not None for result in parallel)
        assert any(result.trajectory.dropped > 0 for result in parallel)

    def test_spawn_start_method_round_trips_everything_through_pickle(self):
        # Under "spawn" nothing is fork-inherited: protocol, configuration and
        # results all cross the boundary as pickles in a fresh interpreter.
        protocol = majority_protocol()
        inputs = _majority_inputs(15)
        seeds = [11, 22, 33]
        serial = run_ensemble(protocol, inputs, seeds, max_steps=400)
        spawned = run_ensemble(
            protocol, inputs, seeds, max_steps=400,
            backend="process", max_workers=2, start_method="spawn",
        )
        assert spawned == serial


class TestWorkerCountEdgeCases:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            BatchRunner(majority_protocol(), max_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            run_ensemble(
                majority_protocol(), _majority_inputs(9), [1],
                backend="process", max_workers=0,
            )

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            BatchRunner(majority_protocol(), max_workers=-2)

    def test_single_worker_matches_serial(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(21)
        serial = BatchRunner(protocol, backend="serial").run_many(
            inputs, repetitions=5, seed=1, max_steps=600
        )
        single = BatchRunner(protocol, backend="process", max_workers=1).run_many(
            inputs, repetitions=5, seed=1, max_steps=600
        )
        assert single == serial

    def test_more_workers_than_repetitions(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(21)
        serial = BatchRunner(protocol, backend="serial").run_many(
            inputs, repetitions=3, seed=2, max_steps=600
        )
        oversubscribed = BatchRunner(protocol, backend="process", max_workers=16).run_many(
            inputs, repetitions=3, seed=2, max_steps=600
        )
        assert oversubscribed == serial

    def test_zero_repetitions_returns_empty_list(self):
        runner = BatchRunner(majority_protocol(), backend="process", max_workers=2)
        assert runner.run_many(_majority_inputs(9), repetitions=0, seed=0) == []

    def test_negative_repetitions_rejected(self):
        runner = BatchRunner(majority_protocol())
        with pytest.raises(ValueError, match="repetitions"):
            runner.run_many(_majority_inputs(9), repetitions=-1, seed=0)
        with pytest.raises(ValueError, match="repetitions"):
            Simulator(majority_protocol(), seed=0).run_many(
                _majority_inputs(9), repetitions=-1
            )

    def test_incompatible_scheduler_engine_rejected_before_spawning(self):
        # Regression: a Simulator constructor error inside the pool
        # initializer crashes every worker and multiprocessing respawns them
        # forever; the combination must be validated in the parent instead.
        class Custom(Scheduler):
            def choose(self, net, configuration, rng):
                return None

        with pytest.raises(ValueError, match="no compiled fast path"):
            run_ensemble(
                majority_protocol(), _majority_inputs(9), [1, 2],
                scheduler=Custom(), engine="compiled",
                backend="process", max_workers=2,
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            BatchRunner(majority_protocol(), backend="threads")
        with pytest.raises(ValueError, match="unknown backend"):
            Simulator(majority_protocol(), seed=0).run_many(
                _majority_inputs(9), repetitions=2, backend="threads"
            )

    def test_zero_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            BatchRunner(majority_protocol(), chunk_size=0)

    def test_invalid_trajectory_capacity_rejected_before_fanout(self):
        # Regression: the batched compiled path enters the engines below
        # _dispatch's validation; a bad capacity must fail at the call site
        # with ValueError, not as an IndexError from inside a pool worker.
        for backend in ("serial", "process"):
            with pytest.raises(ValueError, match="trajectory_capacity"):
                Simulator(majority_protocol(), seed=0).run_many(
                    _majority_inputs(9), repetitions=2, backend=backend,
                    max_workers=2 if backend == "process" else None,
                    record_trajectory=True, trajectory_capacity=0,
                )

    def test_malformed_worker_env_override_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_DEFAULT_WORKERS", "two")
        with pytest.raises(ValueError, match="REPRO_BATCH_DEFAULT_WORKERS"):
            run_ensemble(
                majority_protocol(), _majority_inputs(9), [1, 2], backend="process"
            )

    def test_default_worker_count_honors_env_override(self, monkeypatch):
        # Without an explicit max_workers the env override supplies the
        # default — the knob the CI batch-smoke job pins to 2 — and the
        # results must still be bit-identical to serial.
        monkeypatch.setenv("REPRO_BATCH_DEFAULT_WORKERS", "2")
        protocol = majority_protocol()
        inputs = _majority_inputs(18)
        seeds = [41, 42, 43, 44]
        serial = run_ensemble(protocol, inputs, seeds, max_steps=500)
        parallel = run_ensemble(protocol, inputs, seeds, max_steps=500, backend="process")
        assert parallel == serial

    def test_zero_and_negative_worker_env_overrides_rejected(self, monkeypatch):
        # Regression: values below 1 used to be silently clamped to 1 while
        # a non-integer raised — now every malformed value fails loudly,
        # naming the variable, like the REPRO_FORCE_ENGINE convention.
        from repro.config import default_batch_workers

        for bad in ("0", "-3"):
            monkeypatch.setenv("REPRO_BATCH_DEFAULT_WORKERS", bad)
            with pytest.raises(ValueError, match="REPRO_BATCH_DEFAULT_WORKERS"):
                default_batch_workers()
            with pytest.raises(ValueError, match="REPRO_BATCH_DEFAULT_WORKERS"):
                run_ensemble(
                    majority_protocol(), _majority_inputs(9), [1], backend="process"
                )


class TestReproducibility:
    def test_batch_runner_reproducible_from_master_seed(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(24)
        runner = BatchRunner(protocol, max_workers=2)
        first = runner.run_many(inputs, repetitions=6, seed=14, max_steps=800)
        second = runner.run_many(inputs, repetitions=6, seed=14, max_steps=800)
        assert first == second

    def test_explicit_seed_lists_are_index_aligned(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(24)
        runner = BatchRunner(protocol, max_workers=2, chunk_size=2)
        seeds = [5, 6, 7, 8, 9]
        results = runner.run_seeds(inputs, seeds, max_steps=800)
        # Each repetition must equal a standalone run of its own seed.
        for seed, result in zip(seeds, results):
            solo = run_ensemble(protocol, inputs, [seed], max_steps=800)
            assert [result] == solo

    def test_rejected_run_many_does_not_consume_the_master_stream(self):
        # Regression: a call rejected by argument validation must not advance
        # the master generator, or a corrected retry would return a different
        # ensemble than a fresh simulator seeded the same way.
        protocol = majority_protocol()
        inputs = _majority_inputs(15)
        simulator = Simulator(protocol, seed=42)
        with pytest.raises(ValueError, match="unknown backend"):
            simulator.run_many(inputs, repetitions=4, backend="thread")
        with pytest.raises(ValueError, match="max_workers"):
            simulator.run_many(inputs, repetitions=4, backend="process", max_workers=0)
        with pytest.raises(ValueError, match="trajectory_capacity"):
            simulator.run_many(
                inputs, repetitions=4, record_trajectory=True, trajectory_capacity=0
            )
        retried = simulator.run_many(inputs, repetitions=4, max_steps=500)
        fresh = Simulator(protocol, seed=42).run_many(inputs, repetitions=4, max_steps=500)
        assert retried == fresh

    def test_late_process_rejection_does_not_consume_the_master_stream(self):
        # Failures raised deep inside run_ensemble (here: an unpicklable
        # scheduler detected only at spec-pickling time) must also leave the
        # master generator untouched.
        class Unpicklable(UniformScheduler):
            def __init__(self):
                self.hook = lambda: None

        protocol = majority_protocol()
        inputs = _majority_inputs(15)
        simulator = Simulator(protocol, scheduler=Unpicklable(), seed=42)
        with pytest.raises(ValueError, match="picklable"):
            simulator.run_many(inputs, repetitions=4, backend="process", max_workers=2)
        retried = simulator.run_many(inputs, repetitions=4, max_steps=500)
        fresh = Simulator(protocol, scheduler=Unpicklable(), seed=42).run_many(
            inputs, repetitions=4, max_steps=500
        )
        assert retried == fresh

    def test_run_many_consumes_master_stream_like_the_serial_path(self):
        # Two successive batches from one simulator must not depend on the
        # backend: the master generator advances once per repetition.
        protocol = majority_protocol()
        inputs = _majority_inputs(18)
        serial_sim = Simulator(protocol, seed=77)
        serial = serial_sim.run_many(inputs, 3, max_steps=500) + serial_sim.run_many(
            inputs, 3, max_steps=500
        )
        parallel_sim = Simulator(protocol, seed=77)
        parallel = parallel_sim.run_many(
            inputs, 3, max_steps=500, backend="process", max_workers=2
        ) + parallel_sim.run_many(inputs, 3, max_steps=500, backend="process", max_workers=2)
        assert parallel == serial


class TestPersistentPool:
    """The pool lifecycle: one pool per runner, reused across ensembles,
    released by close()/the context manager, spent afterwards — and never
    able to change results."""

    def test_consecutive_run_many_calls_reuse_one_pool(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(24)
        with BatchRunner(protocol, max_workers=2) as runner:
            first = runner.run_many(inputs, repetitions=8, seed=21, max_steps=800)
            pool = runner._pool
            assert pool is not None
            second = runner.run_many(inputs, repetitions=8, seed=22, max_steps=800)
            assert runner._pool is pool
        # Fresh-pool runs of the same seeds must be bit-identical: pool reuse
        # cannot leak state between ensembles.
        fresh_first = BatchRunner(protocol, max_workers=2)
        fresh_second = BatchRunner(protocol, max_workers=2)
        try:
            assert fresh_first.run_many(inputs, repetitions=8, seed=21, max_steps=800) == first
            assert fresh_second.run_many(inputs, repetitions=8, seed=22, max_steps=800) == second
        finally:
            fresh_first.close()
            fresh_second.close()

    def test_concurrent_run_seeds_from_threads_is_safe_and_deterministic(self):
        # Regression: two threads sharing one pool used to race _ensure_pool
        # and interleave map phases.  The dispatch lock serializes whole
        # ensembles, so both threads must get their exact serial results and
        # the pool must stay usable afterwards.
        protocol = majority_protocol()
        inputs = _majority_inputs(24)
        seeds_by_thread = [[101, 102, 103, 104], [201, 202, 203, 204]]
        expected = [
            run_ensemble(protocol, inputs, seeds, max_steps=500, backend="serial")
            for seeds in seeds_by_thread
        ]
        barrier = threading.Barrier(2)
        results = [None, None]
        errors = []

        def submit(index):
            try:
                barrier.wait(timeout=30)
                results[index] = pool.run_seeds(
                    protocol, inputs, seeds_by_thread[index], max_steps=500
                )
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        with WorkerPool(max_workers=2) as pool:
            threads = [
                threading.Thread(target=submit, args=(index,))
                for index in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            assert results[0] == expected[0]
            assert results[1] == expected[1]
            # The pool survived the contention and still serves new work.
            again = pool.run_seeds(
                protocol, inputs, seeds_by_thread[0], max_steps=500
            )
            assert again == expected[0]

    def test_persistent_pool_matches_serial(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(24)
        serial = BatchRunner(protocol, backend="serial").run_many(
            inputs, repetitions=6, seed=31, max_steps=800
        )
        with BatchRunner(protocol, max_workers=2) as runner:
            runner.run_many(inputs, repetitions=3, seed=99, max_steps=400)  # warm the pool
            assert runner.run_many(inputs, repetitions=6, seed=31, max_steps=800) == serial

    def test_close_is_idempotent(self):
        runner = BatchRunner(majority_protocol(), max_workers=2)
        runner.run_many(_majority_inputs(12), repetitions=2, seed=0, max_steps=300)
        assert not runner.closed
        runner.close()
        assert runner.closed
        runner.close()  # second close is a no-op
        assert runner.closed

    def test_close_without_ever_building_a_pool(self):
        runner = BatchRunner(majority_protocol(), max_workers=2)
        runner.close()
        assert runner.closed

    def test_use_after_close_raises(self):
        runner = BatchRunner(majority_protocol(), max_workers=2)
        runner.close()
        with pytest.raises(RuntimeError, match="closed"):
            runner.run_many(_majority_inputs(12), repetitions=2, seed=0)
        with pytest.raises(RuntimeError, match="closed"):
            runner.run_seeds(_majority_inputs(12), [1, 2])

    def test_serial_runner_close_and_use_after_close(self):
        runner = BatchRunner(majority_protocol(), backend="serial")
        runner.run_many(_majority_inputs(12), repetitions=2, seed=0, max_steps=300)
        runner.close()
        with pytest.raises(RuntimeError, match="closed"):
            runner.run_many(_majority_inputs(12), repetitions=2, seed=0)

    def test_reentering_a_closed_runner_raises(self):
        runner = BatchRunner(majority_protocol(), max_workers=2)
        with runner:
            pass
        assert runner.closed
        with pytest.raises(RuntimeError, match="closed"):
            with runner:
                pass  # pragma: no cover

    def test_context_manager_returns_the_runner_and_closes(self):
        with BatchRunner(majority_protocol(), backend="serial") as runner:
            assert isinstance(runner, BatchRunner)
            assert not runner.closed
        assert runner.closed

    def test_pool_not_clamped_by_the_first_small_ensemble(self):
        # The pool is sized from max_workers, not from the first call's
        # repetition count, so a later larger ensemble keeps its parallelism.
        protocol = majority_protocol()
        inputs = _majority_inputs(18)
        with BatchRunner(protocol, max_workers=2) as runner:
            runner.run_many(inputs, repetitions=1, seed=1, max_steps=300)
            assert runner._pool_workers == 2
            bigger = runner.run_many(inputs, repetitions=8, seed=2, max_steps=600)
        fresh = BatchRunner(protocol, max_workers=2)
        try:
            assert fresh.run_many(inputs, repetitions=8, seed=2, max_steps=600) == bigger
        finally:
            fresh.close()

    def test_serial_runner_reuses_compiled_artifacts_across_calls(self):
        # The rebuild-waste fix: back-to-back ensembles on one runner must
        # not recompile steppers (the stepper object identity is stable).
        runner = BatchRunner(majority_protocol(), backend="serial")
        stepper = runner._simulator._stepper
        assert stepper is not None
        inputs = _majority_inputs(18)
        runner.run_many(inputs, repetitions=3, seed=5, max_steps=500)
        runner.run_many(inputs, repetitions=3, seed=6, max_steps=500)
        assert runner._simulator._stepper is stepper
        runner.close()

    def test_mixed_ensemble_parameters_on_one_pool(self):
        # Per-ensemble parameters (step budgets, recording) travel with each
        # call, so one initialized pool serves heterogeneous ensembles.
        protocol = majority_protocol()
        inputs = _majority_inputs(20)
        with BatchRunner(protocol, max_workers=2) as runner:
            plain = runner.run_many(inputs, repetitions=4, seed=3, max_steps=500)
            recorded = runner.run_many(
                inputs, repetitions=4, seed=3, max_steps=300,
                stability_window=10 ** 9,
                record_trajectory=True, trajectory_capacity=32,
            )
        assert all(result.trajectory is None for result in plain)
        assert all(result.trajectory is not None for result in recorded)
        serial = BatchRunner(protocol, backend="serial").run_many(
            inputs, repetitions=4, seed=3, max_steps=300,
            stability_window=10 ** 9,
            record_trajectory=True, trajectory_capacity=32,
        )
        assert recorded == serial


class TestPickling:
    def test_compiled_net_round_trips_without_steppers(self):
        protocol = majority_protocol()
        compiled = protocol.petri_net.compiled(extra_states=protocol.states)
        classes = compiled.output_classes(protocol.output_table)
        compiled.stepper("uniform", classes)
        compiled.stepper("uniform", classes, record=True)

        clone = pickle.loads(pickle.dumps(compiled))
        assert clone._steppers == {}
        assert clone.states == compiled.states
        assert clone.pre_lists == compiled.pre_lists
        assert clone.delta_lists == compiled.delta_lists
        assert clone.affected == compiled.affected

    def test_unpickled_compiled_net_regenerates_equivalent_steppers(self):
        protocol = majority_protocol()
        compiled = protocol.petri_net.compiled(extra_states=protocol.states)
        classes = compiled.output_classes(protocol.output_table)
        original = compiled.stepper("uniform", classes)
        clone = pickle.loads(pickle.dumps(compiled))
        regenerated = clone.stepper("uniform", classes)
        assert regenerated.__source__ == original.__source__

    def test_protocol_with_populated_compile_cache_pickles(self):
        protocol = majority_protocol()
        Simulator(protocol, seed=0, engine="compiled")  # populates the cache
        clone = pickle.loads(pickle.dumps(protocol))
        inputs = _majority_inputs(12)
        original_run = Simulator(protocol, seed=3, engine="compiled").run(
            inputs, max_steps=500
        )
        clone_run = Simulator(clone, seed=3, engine="compiled").run(inputs, max_steps=500)
        assert clone_run.final == original_run.final
        assert clone_run.steps == original_run.steps

    def test_unpicklable_scheduler_raises_a_clear_error(self):
        class Closure(Scheduler):
            def __init__(self):
                self.hook = lambda: None  # lambdas cannot be pickled

            def choose(self, net, configuration, rng):
                return None

        with pytest.raises(ValueError, match="picklable"):
            run_ensemble(
                majority_protocol(), _majority_inputs(9), [1, 2],
                scheduler=Closure(), backend="process", max_workers=2,
            )

    def test_batch_runner_rejects_unpicklable_scheduler_at_construction(self):
        class Closure(Scheduler):
            def __init__(self):
                self.hook = lambda: None

            def choose(self, net, configuration, rng):
                return None

        with pytest.raises(ValueError, match="picklable"):
            BatchRunner(majority_protocol(), scheduler=Closure(), backend="process")
        # The serial backend never pickles, so the same scheduler is fine there.
        BatchRunner(majority_protocol(), scheduler=Closure(), backend="serial")


class _SuicideScheduler(UniformScheduler):
    """SIGKILLs its own worker process on the first scheduling decision."""

    def choose(self, net, configuration, rng):
        os.kill(os.getpid(), signal.SIGKILL)
        return super().choose(net, configuration, rng)


class _SleepyScheduler(UniformScheduler):
    """Stalls every scheduling decision far past any test timeout."""

    def choose(self, net, configuration, rng):
        time.sleep(60)
        return super().choose(net, configuration, rng)


class TestCrashContainment:
    """Worker-process death and ensemble timeouts surface as typed errors
    carrying the failing spec's context, and the pool object survives both:
    the next ensemble transparently gets fresh worker processes."""

    def test_worker_death_raises_worker_crash_error(self):
        protocol = majority_protocol()
        pool = WorkerPool(max_workers=2)
        try:
            with pytest.raises(WorkerCrashError) as caught:
                pool.run_seeds(
                    protocol, _majority_inputs(12), [1, 2],
                    scheduler=_SuicideScheduler(), engine="reference",
                    max_steps=200,
                )
            assert caught.value.protocol_name == protocol.name
            assert caught.value.seeds == (1, 2)
            assert -signal.SIGKILL in caught.value.exitcodes
        finally:
            pool.close()

    def test_ensemble_timeout_raises_worker_timeout_error(self):
        protocol = majority_protocol()
        pool = WorkerPool(max_workers=2)
        try:
            with pytest.raises(WorkerTimeoutError) as caught:
                pool.run_seeds(
                    protocol, _majority_inputs(12), [1, 2],
                    scheduler=_SleepyScheduler(), engine="reference",
                    max_steps=200, timeout=0.5,
                )
            assert caught.value.protocol_name == protocol.name
            assert caught.value.seeds == (1, 2)
            assert caught.value.timeout == 0.5
        finally:
            pool.close()

    def test_pool_survives_a_crash_and_stays_bit_identical(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(24)
        serial = BatchRunner(protocol, backend="serial").run_seeds(
            inputs, [5, 6, 7], max_steps=800
        )
        pool = WorkerPool(max_workers=2)
        try:
            with pytest.raises(WorkerCrashError):
                pool.run_seeds(
                    protocol, inputs, [1, 2],
                    scheduler=_SuicideScheduler(), engine="reference",
                    max_steps=200,
                )
            assert not pool.closed
            healthy = pool.run_seeds(protocol, inputs, [5, 6, 7], max_steps=800)
            assert healthy == serial
        finally:
            pool.close()

    def test_pool_survives_a_timeout_and_stays_bit_identical(self):
        protocol = majority_protocol()
        inputs = _majority_inputs(24)
        serial = BatchRunner(protocol, backend="serial").run_seeds(
            inputs, [5, 6, 7], max_steps=800
        )
        pool = WorkerPool(max_workers=2)
        try:
            with pytest.raises(WorkerTimeoutError):
                pool.run_seeds(
                    protocol, inputs, [1, 2],
                    scheduler=_SleepyScheduler(), engine="reference",
                    max_steps=200, timeout=0.5,
                )
            assert not pool.closed
            healthy = pool.run_seeds(protocol, inputs, [5, 6, 7], max_steps=800)
            assert healthy == serial
        finally:
            pool.close()

    def test_invalid_timeout_is_rejected(self):
        pool = WorkerPool(max_workers=2)
        try:
            with pytest.raises(ValueError, match="timeout must be positive"):
                pool.run_seeds(
                    majority_protocol(), _majority_inputs(12), [1],
                    timeout=0.0,
                )
        finally:
            pool.close()
