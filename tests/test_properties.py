"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import HomogeneousSystem, IntVector, decompose_solution, hilbert_basis
from repro.core import Configuration, PetriNet, Transition, pairwise

STATES = ["a", "b", "c", "d"]


def configurations(max_count: int = 6):
    return st.builds(
        Configuration,
        st.dictionaries(st.sampled_from(STATES), st.integers(min_value=0, max_value=max_count)),
    )


def int_vectors(max_abs: int = 5):
    return st.builds(
        IntVector,
        st.dictionaries(st.sampled_from(STATES), st.integers(min_value=-max_abs, max_value=max_abs)),
    )


def transitions():
    return st.builds(Transition, configurations(3), configurations(3))


class TestConfigurationProperties:
    @given(configurations(), configurations())
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(configurations(), configurations(), configurations())
    def test_addition_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(configurations())
    def test_zero_is_identity(self, a):
        assert a + Configuration.zero() == a

    @given(configurations(), configurations())
    def test_size_is_additive(self, a, b):
        assert (a + b).size == a.size + b.size

    @given(configurations(), configurations())
    def test_subtraction_inverts_addition(self, a, b):
        assert (a + b) - b == a

    @given(configurations(), st.integers(min_value=0, max_value=5))
    def test_scalar_multiplication_matches_repeated_addition(self, a, k):
        total = Configuration.zero()
        for _ in range(k):
            total = total + a
        assert k * a == total

    @given(configurations(), configurations())
    def test_order_is_antisymmetric(self, a, b):
        if a <= b and b <= a:
            assert a == b

    @given(configurations(), configurations(), configurations())
    def test_order_is_additive(self, a, b, c):
        if a <= b:
            assert a + c <= b + c

    @given(configurations(), st.sets(st.sampled_from(STATES)))
    def test_restrict_erase_partition(self, a, states):
        assert a.restrict(states) + a.erase(states) == a

    @given(configurations())
    def test_hash_consistent_with_equality(self, a):
        clone = Configuration(a.to_dict())
        assert a == clone
        assert hash(a) == hash(clone)


class TestIntVectorProperties:
    @given(int_vectors(), int_vectors())
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(int_vectors())
    def test_negation_is_involutive(self, a):
        assert -(-a) == a

    @given(int_vectors(), int_vectors())
    def test_triangle_inequality_for_norm1(self, a, b):
        assert (a + b).norm1 <= a.norm1 + b.norm1

    @given(int_vectors())
    def test_norm_inf_below_norm1(self, a):
        assert a.norm_inf <= a.norm1

    @given(int_vectors(), int_vectors())
    def test_dot_product_symmetry(self, a, b):
        assert a.dot(b) == b.dot(a)


class TestTransitionProperties:
    @given(transitions(), configurations())
    def test_firing_preserves_displacement(self, transition, context):
        source = transition.pre + context
        target = transition.fire(source)
        delta = transition.displacement()
        for state in set(source.support) | set(target.support) | set(delta):
            assert target[state] - source[state] == delta.get(state, 0)

    @given(transitions(), configurations(), configurations())
    def test_firing_is_additive(self, transition, context, padding):
        # alpha --t--> beta implies alpha + rho --t--> beta + rho.
        source = transition.pre + context
        target = transition.fire(source)
        assert transition.fire(source + padding) == target + padding

    @given(transitions(), configurations())
    def test_reverse_undoes_firing(self, transition, context):
        source = transition.pre + context
        target = transition.fire(source)
        assert transition.reverse().fire(target) == source

    @given(transitions(), configurations())
    def test_conservative_transitions_preserve_size(self, transition, context):
        source = transition.pre + context
        if transition.is_conservative():
            assert transition.fire(source).size == source.size


class TestPetriNetProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=4))
    def test_conservative_net_preserves_population(self, i_count, p_count):
        net = PetriNet(
            [
                pairwise(("i", "i"), ("p", "p")),
                pairwise(("p", "i"), ("i", "i")),
            ]
        )
        root = Configuration({"i": i_count, "p": p_count})
        for configuration in net.reachable_set([root]):
            assert configuration.size == root.size

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=5))
    def test_reachability_is_reflexive_and_transitive(self, count):
        net = PetriNet([pairwise(("i", "i"), ("p", "p")), pairwise(("p", "p"), ("i", "i"))])
        root = Configuration({"i": count})
        reachable = net.reachable_set([root])
        assert root in reachable
        # Transitivity: anything reachable from a reachable configuration is reachable.
        for configuration in reachable:
            assert net.reachable_set([configuration]) <= reachable


class TestHilbertBasisProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=-3, max_value=3), min_size=2, max_size=4),
    )
    def test_basis_elements_are_minimal_solutions(self, coefficients):
        columns = {
            f"x{i}": IntVector({"eq": value}) for i, value in enumerate(coefficients)
        }
        system = HomogeneousSystem(columns)
        basis = hilbert_basis(system)
        for element in basis:
            assert system.is_solution(element)
            assert not element.is_zero()
        for i, first in enumerate(basis):
            for j, second in enumerate(basis):
                if i != j:
                    assert not first <= second

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=-2, max_value=2), min_size=2, max_size=3),
        st.integers(min_value=1, max_value=3),
    )
    def test_scaled_basis_elements_decompose(self, coefficients, scale):
        columns = {
            f"x{i}": IntVector({"eq": value}) for i, value in enumerate(coefficients)
        }
        system = HomogeneousSystem(columns)
        basis = hilbert_basis(system)
        if not basis:
            return
        solution = scale * basis[0]
        parts = decompose_solution(system, solution, basis)
        total = IntVector.zero()
        for part in parts:
            total = total + part
        assert total == solution
