"""Tests for the NumPy-vectorized simulation engine (repro.simulation.vectorized).

The contract: ``engine="numpy"`` produces **bit-identical** trajectories to
the reference and compiled engines for every ``(protocol, inputs, seed)`` —
the three engines consume the random stream with the same discipline.  Plus
the machinery around it: ``engine="auto"`` selection by transition count and
the ``REPRO_FORCE_ENGINE`` override, the lazy NumPy dependency (clear
ImportError when forced, silent fallback in auto mode), the cached
``PetriNet.vectorized()`` hook, kernel correctness against the sparse
definitions, and pickling across process boundaries.
"""

import pickle
import random

import pytest

from repro.core import Configuration, Protocol, Transition, from_counts
from repro.core.petrinet import PetriNet
from repro.core.protocol import OUTPUT_ONE, OUTPUT_ZERO
from repro.protocols import (
    flock_of_birds_protocol,
    majority_protocol,
    modulo_initial_state,
    modulo_protocol,
)
from repro.simulation import (
    Scheduler,
    Simulator,
    TransitionScheduler,
    UniformScheduler,
)
from repro.simulation import simulator as simulator_module
from repro.simulation import vectorized as vectorized_module
from repro.simulation.compiled import CompiledNet
from repro.simulation.vectorized import VectorizedNet, numpy_available

from test_compiled_engine import _random_protocol, assert_same_result

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="NumPy not installed (the optional 'sim' extra)"
)


def _cases():
    return [
        ("majority", majority_protocol(), from_counts(A=21, B=14)),
        ("modulo", modulo_protocol(3, 1), Configuration({modulo_initial_state(): 16})),
        ("flock-of-birds", flock_of_birds_protocol(5), Configuration({1: 12})),
    ]


CASES = _cases()
CASE_IDS = [name for name, _, _ in CASES]


@requires_numpy
class TestThreeWayEquivalence:
    @pytest.mark.parametrize("name,protocol,inputs", CASES, ids=CASE_IDS)
    @pytest.mark.parametrize("seed", [0, 1, 7, 123])
    def test_full_runs_match_all_engines(self, name, protocol, inputs, seed):
        results = {
            engine: Simulator(protocol, engine=engine, seed=seed).run(
                inputs, max_steps=4000, stability_window=150,
                record_trajectory=True, trajectory_capacity=10 ** 6,
            )
            for engine in ("reference", "compiled", "numpy")
        }
        assert_same_result(results["numpy"], results["reference"])
        assert_same_result(results["numpy"], results["compiled"])
        assert results["numpy"].trajectory == results["reference"].trajectory
        assert results["numpy"].trajectory == results["compiled"].trajectory

    @pytest.mark.parametrize("name,protocol,inputs", CASES, ids=CASE_IDS)
    def test_trajectory_prefixes_match(self, name, protocol, inputs):
        for max_steps in (1, 2, 3, 5, 10, 50, 250):
            reference = Simulator(protocol, engine="reference", seed=42).run(
                inputs, max_steps=max_steps, stability_window=10 ** 9
            )
            fast = Simulator(protocol, engine="numpy", seed=42).run(
                inputs, max_steps=max_steps, stability_window=10 ** 9
            )
            assert_same_result(fast, reference)

    @pytest.mark.parametrize("name,protocol,inputs", CASES, ids=CASE_IDS)
    @pytest.mark.parametrize("seed", [0, 5])
    def test_transition_scheduler_matches(self, name, protocol, inputs, seed):
        reference = Simulator(
            protocol, scheduler=TransitionScheduler(), engine="reference", seed=seed
        ).run(inputs, max_steps=2000, stability_window=150)
        fast = Simulator(
            protocol, scheduler=TransitionScheduler(), engine="numpy", seed=seed
        ).run(inputs, max_steps=2000, stability_window=150)
        assert_same_result(fast, reference)

    def test_terminal_configuration_matches(self):
        protocol = flock_of_birds_protocol(3)
        inputs = Configuration({1: 1})
        result = Simulator(protocol, engine="numpy", seed=0).run(inputs)
        assert result.terminated
        assert result.steps == 0
        assert result.consensus == 0
        assert result.consensus_step == 0

    def test_run_many_matches_run_for_run(self):
        protocol = majority_protocol()
        inputs = from_counts(A=9, B=4)
        reference = Simulator(protocol, engine="reference", seed=17).run_many(
            inputs, repetitions=6, max_steps=3000
        )
        fast = Simulator(protocol, engine="numpy", seed=17).run_many(
            inputs, repetitions=6, max_steps=3000
        )
        assert len(fast) == len(reference) == 6
        for fast_result, reference_result in zip(fast, reference):
            assert_same_result(fast_result, reference_result)

    def test_high_multiplicity_preconditions_match(self):
        # Multiplicities 2 and 3 exercise the generic falling-factorial
        # binomial kernel (the strided fast path only covers unit pairs).
        net = PetriNet(
            [
                Transition({"a": 3}, {"b": 3}, name="triple"),
                Transition({"a": 2, "b": 1}, {"a": 1, "b": 2}, name="mixed"),
                Transition({"b": 2}, {"a": 2}, name="back"),
            ],
            name="multiplicities",
        )
        protocol = Protocol.from_petri_net(
            net,
            leaders=Configuration({}),
            initial_states=["a", "b"],
            output={"a": OUTPUT_ONE, "b": OUTPUT_ZERO},
            name="multiplicities",
        )
        inputs = Configuration({"a": 9, "b": 4})
        for seed in (0, 3, 8):
            reference = Simulator(protocol, engine="reference", seed=seed).run(
                inputs, max_steps=500, stability_window=10 ** 9
            )
            fast = Simulator(protocol, engine="numpy", seed=seed).run(
                inputs, max_steps=500, stability_window=10 ** 9
            )
            assert_same_result(fast, reference)

    def test_empty_precondition_transitions_match(self):
        # Regression: transitions with an empty pre-set (spawners) have empty
        # CSR segments; one ordered *last* used to corrupt the reduceat
        # segment of the preceding transition.  Both schedulers must agree
        # with the reference engine with empty-pre transitions in the middle
        # and at the end of the transition order.
        net = PetriNet(
            [
                Transition({"a": 1, "b": 1}, {"b": 2}, name="meet"),
                Transition({}, {"a": 1}, name="spawn-middle"),
                Transition({"b": 2}, {"a": 1, "b": 1}, name="swap"),
                Transition({}, {"b": 1}, name="spawn-last"),
            ],
            name="spawners",
        )
        protocol = Protocol.from_petri_net(
            net,
            leaders=Configuration({}),
            initial_states=["a", "b"],
            output={"a": OUTPUT_ONE, "b": OUTPUT_ZERO},
            name="spawners",
        )
        inputs = Configuration({"a": 3, "b": 2})
        for scheduler in (None, TransitionScheduler()):
            for seed in (0, 1, 5):
                reference = Simulator(
                    protocol, scheduler=scheduler, engine="reference", seed=seed
                ).run(inputs, max_steps=200, stability_window=10 ** 9)
                fast = Simulator(
                    protocol, scheduler=scheduler, engine="numpy", seed=seed
                ).run(inputs, max_steps=200, stability_window=10 ** 9)
                assert_same_result(fast, reference)

    def test_trailing_empty_precondition_kernels(self):
        # The kernel-level regression behind the test above: the last
        # non-empty transition's weight/enabledness must survive a trailing
        # empty-pre transition.
        import numpy as np

        net = PetriNet(
            [
                Transition({"a": 1, "b": 1}, {"c": 2}, name="pair"),
                Transition({}, {"b": 1}, name="source"),
            ],
            name="trailing-source",
        )
        vectorized = net.vectorized()
        counts = np.array(
            vectorized.counts_of(Configuration({"a": 3, "b": 5})), dtype=np.int64
        )
        assert vectorized.full_weights(counts).tolist() == [15, 1]
        assert vectorized.full_enabled(counts).tolist() == [True, True]
        empty_b = np.array(
            vectorized.counts_of(Configuration({"a": 3})), dtype=np.int64
        )
        assert vectorized.full_weights(empty_b).tolist() == [0, 1]
        assert vectorized.full_enabled(empty_b).tolist() == [False, True]

    @pytest.mark.parametrize("case", range(15))
    def test_random_nets_match_step_for_step(self, case):
        rng = random.Random(9000 + case)
        protocol, inputs = _random_protocol(rng)
        for seed in (0, 1):
            reference = Simulator(protocol, engine="reference", seed=seed).run(
                inputs, max_steps=300, stability_window=50,
                record_trajectory=True, trajectory_capacity=10 ** 6,
            )
            fast = Simulator(protocol, engine="numpy", seed=seed).run(
                inputs, max_steps=300, stability_window=50,
                record_trajectory=True, trajectory_capacity=10 ** 6,
            )
            assert_same_result(fast, reference)
            assert fast.trajectory == reference.trajectory


@requires_numpy
class TestEngineSelection:
    def test_auto_uses_compiled_below_the_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_ENGINE", raising=False)
        simulator = Simulator(majority_protocol(), seed=0)
        assert isinstance(simulator._compiled, CompiledNet)
        assert not isinstance(simulator._compiled, VectorizedNet)

    def test_auto_uses_numpy_above_the_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_ENGINE", raising=False)
        monkeypatch.setattr(simulator_module, "AUTO_VECTORIZE_THRESHOLD", 1)
        simulator = Simulator(majority_protocol(), seed=0)
        assert isinstance(simulator._compiled, VectorizedNet)
        # The auto-selected vectorized engine still matches the reference.
        inputs = from_counts(A=7, B=3)
        fast = simulator.run(inputs, max_steps=1000, stability_window=100)
        reference = Simulator(majority_protocol(), engine="reference", seed=0).run(
            inputs, max_steps=1000, stability_window=100
        )
        assert_same_result(fast, reference)

    def test_force_engine_env_overrides_auto(self, monkeypatch):
        protocol = majority_protocol()
        monkeypatch.setenv("REPRO_FORCE_ENGINE", "numpy")
        assert isinstance(Simulator(protocol, seed=0)._compiled, VectorizedNet)
        monkeypatch.setenv("REPRO_FORCE_ENGINE", "compiled")
        forced = Simulator(protocol, seed=0)._compiled
        assert isinstance(forced, CompiledNet) and not isinstance(forced, VectorizedNet)
        monkeypatch.setenv("REPRO_FORCE_ENGINE", "reference")
        assert Simulator(protocol, seed=0)._stepper is None
        monkeypatch.setenv("REPRO_FORCE_ENGINE", "auto")
        assert Simulator(protocol, seed=0)._stepper is not None

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_force_engine_env_does_not_override_explicit_engines(self, monkeypatch):
        # The shadowed override intentionally trips the one-time warning
        # (tested on its own in test_ensemble_engine.py).
        monkeypatch.setenv("REPRO_FORCE_ENGINE", "numpy")
        explicit = Simulator(majority_protocol(), seed=0, engine="compiled")._compiled
        assert isinstance(explicit, CompiledNet)
        assert not isinstance(explicit, VectorizedNet)
        assert Simulator(majority_protocol(), seed=0, engine="reference")._stepper is None

    def test_invalid_force_engine_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_ENGINE", "turbo")
        with pytest.raises(ValueError, match="REPRO_FORCE_ENGINE"):
            Simulator(majority_protocol(), seed=0)

    def test_custom_scheduler_rejected_in_numpy_mode(self):
        class FirstEnabled(Scheduler):
            def choose(self, net, configuration, rng):
                return None

        with pytest.raises(ValueError, match="no compiled fast path"):
            Simulator(majority_protocol(), scheduler=FirstEnabled(), engine="numpy")

    def test_unknown_states_rejected_in_numpy_mode(self):
        simulator = Simulator(majority_protocol(), engine="numpy", seed=0)
        with pytest.raises(ValueError, match="outside the compiled universe"):
            simulator.run_from(Configuration({"Z": 2}))

    def test_unknown_states_fall_back_in_auto_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_ENGINE", raising=False)
        monkeypatch.setattr(simulator_module, "AUTO_VECTORIZE_THRESHOLD", 1)
        protocol = majority_protocol()
        strange = Configuration({"Z": 2})
        auto = Simulator(protocol, engine="auto", seed=0).run_from(strange, max_steps=100)
        reference = Simulator(protocol, engine="reference", seed=0).run_from(
            strange, max_steps=100
        )
        assert_same_result(auto, reference)
        assert auto.terminated


class TestMissingNumpy:
    """The lazy-dependency contract, simulated by blanking the module handle."""

    def test_numpy_engine_raises_a_clear_import_error(self, monkeypatch):
        monkeypatch.setattr(vectorized_module, "_np", None)
        with pytest.raises(ImportError, match="sim"):
            Simulator(majority_protocol(), engine="numpy")

    def test_vectorized_hook_raises_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vectorized_module, "_np", None)
        net = PetriNet([Transition({"a": 1}, {"b": 1})])
        with pytest.raises(ImportError, match="numpy"):
            net.vectorized()

    def test_auto_silently_falls_back_to_compiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_ENGINE", raising=False)
        monkeypatch.setattr(vectorized_module, "_np", None)
        monkeypatch.setattr(simulator_module, "AUTO_VECTORIZE_THRESHOLD", 1)
        simulator = Simulator(majority_protocol(), seed=0)
        assert isinstance(simulator._compiled, CompiledNet)
        assert not isinstance(simulator._compiled, VectorizedNet)
        result = simulator.run(from_counts(A=5, B=2), max_steps=2000)
        assert result.consensus == 1

    def test_numpy_available_reflects_the_handle(self, monkeypatch):
        monkeypatch.setattr(vectorized_module, "_np", None)
        assert not numpy_available()


@requires_numpy
class TestVectorizedNet:
    def test_vectorized_hook_caches_per_universe(self):
        net = majority_protocol().petri_net
        assert net.vectorized() is net.vectorized()
        assert net.vectorized(extra_states=["A"]) is net.vectorized()
        enlarged = net.vectorized(extra_states=["X"])
        assert enlarged is not net.vectorized()
        assert enlarged is net.vectorized(extra_states=["X"])
        assert "X" in enlarged.index_of
        # The vectorized and compiled caches are independent.
        assert net.compiled() is not net.vectorized()

    def test_full_weights_match_the_sparse_scheduler(self):
        import numpy as np

        rng = random.Random(4)
        protocol, _ = _random_protocol(rng)
        net = protocol.petri_net
        vectorized = net.vectorized(extra_states=protocol.states)
        for trial in range(20):
            configuration = Configuration(
                {state: rng.randrange(0, 5) for state in vectorized.states}
            )
            counts = np.array(vectorized.counts_of(configuration), dtype=np.int64)
            weights = vectorized.full_weights(counts)
            expected = [
                UniformScheduler._weight(transition, configuration)
                for transition in net.transitions
            ]
            assert weights.tolist() == expected

    def test_full_enabled_matches_the_sparse_definition(self):
        import numpy as np

        rng = random.Random(9)
        protocol, _ = _random_protocol(rng)
        net = protocol.petri_net
        vectorized = net.vectorized(extra_states=protocol.states)
        for trial in range(20):
            configuration = Configuration(
                {state: rng.randrange(0, 4) for state in vectorized.states}
            )
            counts = np.array(vectorized.counts_of(configuration), dtype=np.int64)
            enabled = vectorized.full_enabled(counts)
            expected = [
                transition.is_enabled(configuration) for transition in net.transitions
            ]
            assert enabled.tolist() == expected

    def test_steppers_are_cached_per_kind_and_classes(self):
        protocol = majority_protocol()
        vectorized = protocol.petri_net.vectorized(extra_states=protocol.states)
        classes = vectorized.output_classes(protocol.output_table)
        stepper = vectorized.stepper("uniform", classes)
        assert vectorized.stepper("uniform", classes) is stepper
        assert vectorized.stepper("transition", classes) is not stepper

    def test_unknown_kind_rejected(self):
        vectorized = majority_protocol().petri_net.vectorized()
        with pytest.raises(ValueError, match="unknown compiled scheduler kind"):
            vectorized.stepper("fifo", vectorized.output_classes({}))

    def test_pickles_without_steppers(self):
        protocol = majority_protocol()
        vectorized = protocol.petri_net.vectorized(extra_states=protocol.states)
        classes = vectorized.output_classes(protocol.output_table)
        vectorized.stepper("uniform", classes)
        clone = pickle.loads(pickle.dumps(vectorized))
        assert clone._steppers == {}
        assert clone.states == vectorized.states
        assert clone.pre_lists == vectorized.pre_lists
        # The clone simulates identically after rebuilding its closures.
        inputs = from_counts(A=8, B=5)
        counts = clone.counts_of(protocol.initial_configuration(inputs))
        stepper = clone.stepper("uniform", classes)
        steps, value, since, terminated = stepper(
            counts, random.Random(3), 500, 10 ** 9, 0, 0, 0
        )
        reference = Simulator(protocol, engine="reference", seed=3).run(
            inputs, max_steps=500, stability_window=10 ** 9
        )
        assert clone.configuration_of(counts) == reference.final
        assert steps == reference.steps

    def test_overflow_guard_rejects_astronomical_populations(self):
        # int64 weight totals would wrap silently; the static guard must
        # reject runs whose counts could make that happen, and suggest the
        # arbitrary-precision compiled engine.
        net = PetriNet(
            [Transition({"a": 1, "b": 1}, {"a": 2}, name="meet")],
            name="overflow",
        )
        protocol = Protocol.from_petri_net(
            net,
            leaders=Configuration({}),
            initial_states=["a", "b"],
            output={"a": OUTPUT_ONE, "b": OUTPUT_ZERO},
            name="overflow",
        )
        simulator = Simulator(protocol, engine="numpy", seed=0)
        with pytest.raises(OverflowError, match="compiled"):
            simulator.run(Configuration({"a": 2 ** 40, "b": 2 ** 40}), max_steps=10)
        # Regression: the guard itself must be computed in Python integers —
        # an int64 population sum would wrap negative for totals >= 2**63
        # and bypass the check entirely.
        with pytest.raises(OverflowError, match="compiled"):
            simulator.run(Configuration({"a": 2 ** 62, "b": 2 ** 62}), max_steps=10)
        # A large-but-safe population passes the guard and simulates (the
        # three b-agents are consumed, then the run is terminal).
        result = simulator.run(Configuration({"a": 2 ** 20, "b": 3}), max_steps=10)
        assert result.terminated and result.steps == 3

    def test_overflow_guard_accounts_for_population_growth(self):
        # Non-conservative nets can grow their counts by max_positive_delta
        # per step, so the guard must consider the step budget too.
        net = PetriNet(
            [Transition({"a": 1}, {"a": 2}, name="double")],
            name="grower",
        )
        protocol = Protocol.from_petri_net(
            net,
            leaders=Configuration({}),
            initial_states=["a"],
            output={"a": OUTPUT_ONE},
            name="grower",
        )
        simulator = Simulator(protocol, engine="numpy", seed=0)
        inputs = Configuration({"a": 4})
        with pytest.raises(OverflowError, match="step budget"):
            simulator.run(inputs, max_steps=2 ** 62)
        result = simulator.run(inputs, max_steps=50, stability_window=10 ** 9)
        assert result.steps == 50
        reference = Simulator(protocol, engine="reference", seed=0).run(
            inputs, max_steps=50, stability_window=10 ** 9
        )
        assert_same_result(result, reference)

    def test_protocol_pickle_drops_the_vectorized_cache(self):
        protocol = majority_protocol()
        Simulator(protocol, seed=0, engine="numpy")  # populates the cache
        assert protocol.petri_net._vectorized_cache
        clone = pickle.loads(pickle.dumps(protocol))
        assert clone.petri_net._vectorized_cache == {}
        inputs = from_counts(A=12, B=5)
        original = Simulator(protocol, seed=3, engine="numpy").run(inputs, max_steps=500)
        rebuilt = Simulator(clone, seed=3, engine="numpy").run(inputs, max_steps=500)
        assert rebuilt.final == original.final
        assert rebuilt.steps == original.steps


@requires_numpy
class TestBatchWithNumpyEngine:
    def test_numpy_ensembles_agree_across_backends(self):
        protocol = majority_protocol()
        inputs = from_counts(A=20, B=10)
        serial = Simulator(protocol, seed=6, engine="numpy").run_many(
            inputs, repetitions=6, max_steps=1000
        )
        parallel = Simulator(protocol, seed=6, engine="numpy").run_many(
            inputs, repetitions=6, max_steps=1000, backend="process", max_workers=2
        )
        assert parallel == serial

    def test_numpy_trajectories_travel_across_the_process_boundary(self):
        protocol = majority_protocol()
        inputs = from_counts(A=14, B=7)
        kwargs = dict(
            repetitions=4, max_steps=300, stability_window=10 ** 9,
            record_trajectory=True, trajectory_capacity=64,
        )
        serial = Simulator(protocol, seed=5, engine="numpy").run_many(inputs, **kwargs)
        parallel = Simulator(protocol, seed=5, engine="numpy").run_many(
            inputs, backend="process", max_workers=2, **kwargs
        )
        assert parallel == serial
        assert all(result.trajectory is not None for result in parallel)
