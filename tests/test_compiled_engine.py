"""Equivalence and unit tests for the compiled simulation engine.

The compiled engine (dense counts array + generated stepper) must produce
*identical* trajectories to the sparse reference engine for every
``(protocol, inputs, seed)``: same final configuration, same step counts,
same consensus value and consensus step, same termination flag.  These tests
assert that across the majority, modulo and flock-of-birds protocols (plus a
leader-based succinct protocol and a non-conservative net), for full runs,
truncated prefixes of runs, both built-in schedulers, and batched runs — and
across a seeded property-style sweep of random small nets (random pre/post
multisets) that goes beyond the named protocols.
"""

import random

import pytest

from repro.core import Configuration, Protocol, Transition, from_counts
from repro.core.petrinet import PetriNet
from repro.core.protocol import OUTPUT_ONE, OUTPUT_UNDEFINED, OUTPUT_ZERO
from repro.protocols import (
    flock_of_birds_protocol,
    majority_protocol,
    modulo_initial_state,
    modulo_protocol,
    succinct_initial_state,
    succinct_leaderless_protocol,
)
from repro.simulation import (
    Scheduler,
    Simulator,
    TransitionScheduler,
    UniformScheduler,
)


def _cases():
    return [
        ("majority", majority_protocol(), from_counts(A=21, B=14)),
        ("modulo", modulo_protocol(3, 1), Configuration({modulo_initial_state(): 16})),
        ("flock-of-birds", flock_of_birds_protocol(5), Configuration({1: 12})),
    ]


CASES = _cases()
CASE_IDS = [name for name, _, _ in CASES]


def assert_same_result(fast, reference):
    assert fast.final == reference.final
    assert fast.steps == reference.steps
    assert fast.consensus == reference.consensus
    assert fast.consensus_step == reference.consensus_step
    assert fast.terminated == reference.terminated
    assert fast.interactions_sampled == reference.interactions_sampled
    assert fast.initial == reference.initial


class TestEquivalenceWithReferenceEngine:
    @pytest.mark.parametrize("name,protocol,inputs", CASES, ids=CASE_IDS)
    @pytest.mark.parametrize("seed", [0, 1, 7, 123])
    def test_full_runs_match(self, name, protocol, inputs, seed):
        reference = Simulator(protocol, engine="reference", seed=seed).run(
            inputs, max_steps=4000, stability_window=150
        )
        fast = Simulator(protocol, engine="compiled", seed=seed).run(
            inputs, max_steps=4000, stability_window=150
        )
        assert_same_result(fast, reference)

    @pytest.mark.parametrize("name,protocol,inputs", CASES, ids=CASE_IDS)
    def test_trajectory_prefixes_match(self, name, protocol, inputs):
        # Truncating the same seeded run at several step budgets compares the
        # trajectories step for step, not just their endpoints.
        for max_steps in (1, 2, 3, 5, 10, 50, 250):
            reference = Simulator(protocol, engine="reference", seed=42).run(
                inputs, max_steps=max_steps, stability_window=10 ** 9
            )
            fast = Simulator(protocol, engine="compiled", seed=42).run(
                inputs, max_steps=max_steps, stability_window=10 ** 9
            )
            assert_same_result(fast, reference)

    @pytest.mark.parametrize("name,protocol,inputs", CASES, ids=CASE_IDS)
    @pytest.mark.parametrize("seed", [0, 5])
    def test_transition_scheduler_matches(self, name, protocol, inputs, seed):
        reference = Simulator(
            protocol, scheduler=TransitionScheduler(), engine="reference", seed=seed
        ).run(inputs, max_steps=2000, stability_window=150)
        fast = Simulator(
            protocol, scheduler=TransitionScheduler(), engine="compiled", seed=seed
        ).run(inputs, max_steps=2000, stability_window=150)
        assert_same_result(fast, reference)

    def test_leader_protocol_matches(self):
        protocol = succinct_leaderless_protocol(8)
        inputs = Configuration({succinct_initial_state(): 12})
        for seed in (3, 11):
            reference = Simulator(protocol, engine="reference", seed=seed).run(
                inputs, max_steps=3000, stability_window=500
            )
            fast = Simulator(protocol, engine="compiled", seed=seed).run(
                inputs, max_steps=3000, stability_window=500
            )
            assert_same_result(fast, reference)

    def test_run_many_matches_run_for_run(self):
        protocol = majority_protocol()
        inputs = from_counts(A=9, B=4)
        reference = Simulator(protocol, engine="reference", seed=17).run_many(
            inputs, repetitions=6, max_steps=3000
        )
        fast = Simulator(protocol, engine="compiled", seed=17).run_many(
            inputs, repetitions=6, max_steps=3000
        )
        assert len(fast) == len(reference) == 6
        for fast_result, reference_result in zip(fast, reference):
            assert_same_result(fast_result, reference_result)

    def test_terminal_configuration_matches(self):
        # A single below-threshold agent can never interact: both engines
        # must report an immediately terminal run with consensus 0.
        protocol = flock_of_birds_protocol(3)
        inputs = Configuration({1: 1})
        for engine in ("reference", "compiled"):
            result = Simulator(protocol, engine=engine, seed=0).run(inputs)
            assert result.terminated
            assert result.steps == 0
            assert result.consensus == 0
            assert result.consensus_step == 0

    def test_non_conservative_net_matches(self):
        # Spawning and dying transitions change the population size; the
        # consensus counters must track the moving total.
        net = PetriNet(
            [
                Transition({"s": 1}, {"s": 2}, name="spawn"),
                Transition({"s": 3}, {"s": 1}, name="cull"),
                Transition({"s": 1}, {"d": 1}, name="defect"),
                Transition({"s": 1, "d": 1}, {"s": 2}, name="recruit"),
            ],
            name="spawner",
        )
        protocol = Protocol.from_petri_net(
            net,
            leaders=Configuration({}),
            initial_states=["s"],
            output={"s": OUTPUT_ONE, "d": OUTPUT_ZERO},
            name="spawner",
        )
        inputs = Configuration({"s": 3})
        for seed in (0, 2, 9):
            reference = Simulator(protocol, engine="reference", seed=seed).run(
                inputs, max_steps=400, stability_window=10 ** 9
            )
            fast = Simulator(protocol, engine="compiled", seed=seed).run(
                inputs, max_steps=400, stability_window=10 ** 9
            )
            assert_same_result(fast, reference)


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator(majority_protocol(), engine="turbo")

    def test_custom_scheduler_falls_back_in_auto_mode(self):
        class FirstEnabled(Scheduler):
            def choose(self, net, configuration, rng):
                for transition in net.transitions:
                    if transition.is_enabled(configuration):
                        return transition
                return None

        simulator = Simulator(majority_protocol(), scheduler=FirstEnabled(), seed=0)
        assert simulator._stepper is None  # reference path
        result = simulator.run(from_counts(A=3, B=1), max_steps=500)
        assert result.consensus == 1

    def test_custom_scheduler_rejected_in_compiled_mode(self):
        class FirstEnabled(Scheduler):
            def choose(self, net, configuration, rng):
                return None

        with pytest.raises(ValueError, match="no compiled fast path"):
            Simulator(majority_protocol(), scheduler=FirstEnabled(), engine="compiled")

    def test_overridden_choose_disables_the_fast_path(self):
        class Biased(UniformScheduler):
            def choose(self, net, configuration, rng):
                return super().choose(net, configuration, rng)

        class BiasedWeights(UniformScheduler):
            @staticmethod
            def _weight(transition, configuration):
                return 1

        assert UniformScheduler().compiled_kind() == "uniform"
        assert TransitionScheduler().compiled_kind() == "transition"
        assert Biased().compiled_kind() is None
        assert BiasedWeights().compiled_kind() is None

    def test_unknown_states_fall_back_in_auto_mode(self):
        protocol = majority_protocol()
        strange = Configuration({"Z": 2})
        auto = Simulator(protocol, engine="auto", seed=0).run_from(strange, max_steps=100)
        reference = Simulator(protocol, engine="reference", seed=0).run_from(
            strange, max_steps=100
        )
        assert_same_result(auto, reference)
        assert auto.terminated

    def test_unknown_states_rejected_in_compiled_mode(self):
        simulator = Simulator(majority_protocol(), engine="compiled", seed=0)
        with pytest.raises(ValueError, match="outside the compiled universe"):
            simulator.run_from(Configuration({"Z": 2}))

    def test_simulate_accepts_engine(self):
        from repro.simulation import simulate

        protocol = flock_of_birds_protocol(3)
        inputs = Configuration({1: 5})
        fast = simulate(protocol, inputs, seed=42, max_steps=20000, engine="compiled")
        reference = simulate(protocol, inputs, seed=42, max_steps=20000, engine="reference")
        assert_same_result(fast, reference)
        assert fast.consensus == 1


class TestCompiledNet:
    def test_dense_indexing_round_trips(self):
        net = majority_protocol().petri_net
        compiled = net.compiled()
        assert set(compiled.index_of) == set(net.states)
        assert sorted(compiled.index_of.values()) == list(range(compiled.num_states))
        configuration = from_counts(A=3, b=2)
        counts = compiled.counts_of(configuration)
        assert compiled.configuration_of(counts) == configuration

    def test_counts_of_unknown_state_returns_none(self):
        compiled = majority_protocol().petri_net.compiled()
        assert compiled.counts_of(Configuration({"Z": 1})) is None

    def test_counts_of_reuses_the_buffer(self):
        compiled = majority_protocol().petri_net.compiled()
        buffer = [7] * compiled.num_states
        counts = compiled.counts_of(from_counts(A=2), out=buffer)
        assert counts is buffer
        assert sum(counts) == 2

    def test_deltas_match_transition_displacements(self):
        net = majority_protocol().petri_net
        compiled = net.compiled()
        for transition, delta in zip(net.transitions, compiled.delta_lists):
            displacement = transition.displacement()
            assert {compiled.states[i]: d for i, d in delta} == displacement

    def test_affected_covers_transitions_reading_changed_states(self):
        net = majority_protocol().petri_net
        compiled = net.compiled()
        for t, delta in enumerate(compiled.delta_lists):
            changed = {i for i, _ in delta}
            for u, pre in enumerate(compiled.pre_lists):
                reads = {i for i, _ in pre}
                if reads & changed:
                    assert u in compiled.affected[t]

    def test_compiled_hook_caches_per_universe(self):
        net = majority_protocol().petri_net
        assert net.compiled() is net.compiled()
        # Extra states already in the net normalize to the cached instance.
        assert net.compiled(extra_states=["A"]) is net.compiled()
        enlarged = net.compiled(extra_states=["X"])
        assert enlarged is not net.compiled()
        assert enlarged is net.compiled(extra_states=["X"])
        assert "X" in enlarged.index_of

    def test_stepper_is_cached_and_carries_source(self):
        protocol = majority_protocol()
        compiled = protocol.petri_net.compiled(extra_states=protocol.states)
        classes = compiled.output_classes(protocol.output_table)
        stepper = compiled.stepper("uniform", classes)
        assert compiled.stepper("uniform", classes) is stepper
        assert "total" in stepper.__source__

    def test_unknown_kind_rejected(self):
        compiled = majority_protocol().petri_net.compiled()
        with pytest.raises(ValueError, match="unknown compiled scheduler kind"):
            compiled.stepper("fifo", compiled.output_classes({}))


def _random_multiset(rng, states, min_size, max_size):
    """A random configuration over ``states`` with ``min_size..max_size`` agents."""
    size = rng.randint(min_size, max_size)
    counts = {}
    for _ in range(size):
        state = rng.choice(states)
        counts[state] = counts.get(state, 0) + 1
    return Configuration(counts)


def _random_protocol(rng):
    """A random small Petri-net protocol: arbitrary pre/post multisets,
    possibly non-conservative, possibly with '*'-output states."""
    states = [f"s{i}" for i in range(rng.randint(2, 4))]
    transitions = []
    for t in range(rng.randint(1, 5)):
        pre = _random_multiset(rng, states, 1, 2)
        post = _random_multiset(rng, states, 0, 3)
        transitions.append(Transition(pre, post, name=f"t{t}"))
    net = PetriNet(transitions, states=states, name="random")
    outputs = [OUTPUT_ZERO, OUTPUT_ONE]
    if rng.random() < 0.4:
        outputs.append(OUTPUT_UNDEFINED)
    output = {state: rng.choice(outputs) for state in states}
    protocol = Protocol.from_petri_net(
        net,
        leaders=Configuration({}),
        initial_states=states,
        output=output,
        name="random",
    )
    inputs = _random_multiset(rng, states, 2, 8)
    return protocol, inputs


def _engines_under_test():
    """The engines of the cross-engine property sweep: always reference and
    compiled, plus the NumPy engine when it is installed — the three-way
    equivalence the vectorized engine must uphold."""
    from repro.simulation.vectorized import numpy_available

    engines = ["reference", "compiled"]
    if numpy_available():
        engines.append("numpy")
    return engines


class TestRandomNetEquivalence:
    """Seeded property-style sweep: the engines must agree step for step on
    arbitrary small nets, not just on the five named protocols.  Each case is
    a random net (random pre/post multisets, so non-conservative spawning and
    dying transitions and '*'-output states all occur) checked across every
    engine (three ways when NumPy is installed) and both schedulers with
    trajectories recorded, so any divergence pinpoints the first differing
    firing rather than just the final configuration.
    """

    @pytest.mark.parametrize("case", range(25))
    def test_random_small_nets_match_step_for_step(self, case):
        rng = random.Random(6000 + case)
        protocol, inputs = _random_protocol(rng)
        for seed in (0, 1):
            results = {
                engine: Simulator(protocol, engine=engine, seed=seed).run(
                    inputs,
                    max_steps=300,
                    stability_window=50,
                    record_trajectory=True,
                    trajectory_capacity=10 ** 6,
                )
                for engine in _engines_under_test()
            }
            reference = results.pop("reference")
            for engine, fast in results.items():
                assert_same_result(fast, reference)
                assert fast.trajectory == reference.trajectory

    @pytest.mark.parametrize("case", range(10))
    def test_random_small_nets_match_under_the_transition_scheduler(self, case):
        rng = random.Random(7000 + case)
        protocol, inputs = _random_protocol(rng)
        scheduler = TransitionScheduler()
        reference = Simulator(
            protocol, scheduler=scheduler, engine="reference", seed=3
        ).run(inputs, max_steps=200, stability_window=50)
        for engine in _engines_under_test()[1:]:
            fast = Simulator(protocol, scheduler=scheduler, engine=engine, seed=3).run(
                inputs, max_steps=200, stability_window=50
            )
            assert_same_result(fast, reference)

    @pytest.mark.parametrize("case", range(8))
    def test_random_net_batches_match_across_backends(self, case):
        rng = random.Random(8000 + case)
        protocol, inputs = _random_protocol(rng)
        serial = Simulator(protocol, seed=case).run_many(
            inputs, repetitions=4, max_steps=150, stability_window=50
        )
        parallel = Simulator(protocol, seed=case).run_many(
            inputs, repetitions=4, max_steps=150, stability_window=50,
            backend="process", max_workers=2,
        )
        for fast_result, reference_result in zip(parallel, serial):
            assert_same_result(fast_result, reference_result)


class TestBatchedRuns:
    def test_run_many_is_reproducible_from_the_simulator_seed(self):
        protocol = majority_protocol()
        inputs = from_counts(A=7, B=3)
        first = Simulator(protocol, seed=5).run_many(inputs, repetitions=4, max_steps=2000)
        second = Simulator(protocol, seed=5).run_many(inputs, repetitions=4, max_steps=2000)
        for a, b in zip(first, second):
            assert_same_result(a, b)

    def test_repetitions_are_independent(self):
        # With a shared buffer, a bug would leak one run's final counts into
        # the next run's initial configuration.
        protocol = majority_protocol()
        inputs = from_counts(A=7, B=3)
        results = Simulator(protocol, seed=5).run_many(inputs, repetitions=4, max_steps=2000)
        expected_initial = protocol.initial_configuration(inputs)
        for result in results:
            assert result.initial == expected_initial
            assert result.final.size == expected_initial.size  # conservative net
