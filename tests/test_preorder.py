"""Unit tests for repro.core.preorder."""

import pytest

from repro.core import (
    PetriNet,
    PetriNetPreorder,
    RelationPreorder,
    from_counts,
    pairwise,
)
from repro.core.preorder import check_additivity


@pytest.fixture
def net():
    return PetriNet(
        [
            pairwise(("i", "i"), ("p", "p"), name="fwd"),
            pairwise(("p", "p"), ("i", "i"), name="bwd"),
        ]
    )


class TestPetriNetPreorder:
    def test_width_matches_net(self, net):
        assert PetriNetPreorder(net).width == 2

    def test_relates_uses_reachability(self, net):
        preorder = PetriNetPreorder(net)
        assert preorder.relates(from_counts(i=2), from_counts(p=2))
        assert not preorder.relates(from_counts(i=1), from_counts(p=1))

    def test_relates_is_reflexive(self, net):
        preorder = PetriNetPreorder(net)
        assert preorder.relates(from_counts(i=1), from_counts(i=1))

    def test_successors(self, net):
        preorder = PetriNetPreorder(net)
        assert set(preorder.successors(from_counts(i=2))) == {from_counts(p=2)}

    def test_witness_is_firable(self, net):
        preorder = PetriNetPreorder(net)
        word = preorder.witness(from_counts(i=2), from_counts(p=2))
        assert word is not None
        assert net.fire_word(from_counts(i=2), word) == from_counts(p=2)

    def test_reachable_from(self, net):
        preorder = PetriNetPreorder(net)
        reachable = preorder.reachable_from(from_counts(i=2))
        assert reachable == {from_counts(i=2), from_counts(p=2)}

    def test_additivity_spot_check(self, net):
        preorder = PetriNetPreorder(net)
        pairs = [(from_counts(i=2), from_counts(p=2))]
        paddings = [from_counts(i=1), from_counts(p=3), from_counts(i=1, p=1)]
        assert check_additivity(preorder, pairs, paddings)


class TestRelationPreorder:
    def test_relates_via_callable(self):
        preorder = RelationPreorder(lambda a, b: a.size == b.size, width=None)
        assert preorder.relates(from_counts(i=2), from_counts(p=2))
        assert not preorder.relates(from_counts(i=2), from_counts(p=1))

    def test_width_can_be_unbounded(self):
        preorder = RelationPreorder(lambda a, b: True, width=None)
        assert preorder.width is None
        assert "omega" in repr(preorder)

    def test_successors_default_to_empty(self):
        preorder = RelationPreorder(lambda a, b: True)
        assert list(preorder.successors(from_counts(i=1))) == []

    def test_successor_function_used_when_given(self):
        preorder = RelationPreorder(
            lambda a, b: True,
            successor_fn=lambda c: [c + from_counts(x=1)],
            width=1,
        )
        (successor,) = list(preorder.successors(from_counts(i=1)))
        assert successor == from_counts(i=1, x=1)

    def test_conservativity_spot_check(self):
        preorder = RelationPreorder(lambda a, b: a.size == b.size)
        samples = [(from_counts(i=2), from_counts(p=2))]
        assert preorder.is_conservative_on(samples)
