"""Unit tests for repro.analysis.coverability."""

import pytest

from repro.analysis import (
    KarpMillerTree,
    backward_coverability,
    is_coverable,
    rackoff_bound,
    rackoff_stabilization_threshold,
    shortest_covering_word,
)
from repro.core import PetriNet, Transition, from_counts, pairwise, unit


@pytest.fixture
def swap_net():
    return PetriNet(
        [
            pairwise(("i", "i"), ("p", "p"), name="fwd"),
            pairwise(("p", "p"), ("i", "i"), name="bwd"),
        ]
    )


@pytest.fixture
def spawn_net():
    return PetriNet([Transition({"a": 1}, {"a": 1, "b": 1}, name="spawn")])


class TestRackoffBound:
    def test_bound_formula(self, swap_net):
        # ||target||_inf = 1, ||T||_inf = 2 (the width-2 transitions consume
        # two agents of the same state), |P| = 2.
        bound = rackoff_bound(unit("p"), swap_net)
        assert bound == (1 + 2) ** (2 ** 2)

    def test_bound_grows_with_target_norm(self, swap_net):
        assert rackoff_bound(from_counts(p=5), swap_net) > rackoff_bound(unit("p"), swap_net)

    def test_zero_base(self):
        net = PetriNet()
        assert rackoff_bound(from_counts(), net) == 0

    def test_stabilization_threshold(self, swap_net):
        assert rackoff_stabilization_threshold(swap_net) == 2 * (1 + 2) ** (2 ** 2)

    def test_bound_dominates_measured_witness(self, swap_net):
        word = shortest_covering_word(swap_net, from_counts(i=2), unit("p"))
        assert word is not None
        assert len(word) <= rackoff_bound(unit("p"), swap_net)


class TestBackwardCoverability:
    def test_coverable_in_conservative_net(self, swap_net):
        assert backward_coverability(swap_net, from_counts(i=2), unit("p"))
        assert is_coverable(swap_net, from_counts(i=4), from_counts(p=4))

    def test_not_coverable(self, swap_net):
        assert not backward_coverability(swap_net, from_counts(i=1), unit("p"))
        assert not backward_coverability(swap_net, from_counts(i=3), from_counts(p=4))

    def test_coverable_in_unbounded_net(self, spawn_net):
        assert backward_coverability(spawn_net, from_counts(a=1), from_counts(b=10))

    def test_not_coverable_without_generator(self, spawn_net):
        assert not backward_coverability(spawn_net, from_counts(b=5), from_counts(a=1))

    def test_target_already_covered(self, swap_net):
        assert backward_coverability(swap_net, from_counts(p=2), unit("p"))

    def test_agrees_with_forward_search_on_small_instances(self, swap_net):
        for i in range(5):
            source = from_counts(i=i)
            target = from_counts(p=2)
            backward = backward_coverability(swap_net, source, target)
            forward = swap_net.find_covering_path(source, target, max_nodes=1000) is not None
            assert backward == forward

    def test_iteration_guard(self, spawn_net):
        with pytest.raises(RuntimeError):
            backward_coverability(
                spawn_net, from_counts(a=1), from_counts(b=50), max_iterations=1
            )


class TestShortestCoveringWord:
    def test_witness_is_firable_and_covering(self, swap_net):
        word = shortest_covering_word(swap_net, from_counts(i=4), from_counts(p=4))
        assert word is not None
        final = swap_net.fire_word(from_counts(i=4), word)
        assert final.covers(from_counts(p=4))

    def test_length_is_minimal(self, swap_net):
        word = shortest_covering_word(swap_net, from_counts(i=4), from_counts(p=4))
        assert len(word) == 2

    def test_none_when_not_coverable(self, swap_net):
        assert shortest_covering_word(swap_net, from_counts(i=1), unit("p"), max_nodes=100) is None


class TestKarpMiller:
    def test_bounded_net(self, swap_net):
        tree = KarpMillerTree(swap_net, from_counts(i=2))
        assert tree.is_bounded()
        assert tree.covers(from_counts(p=2))
        assert not tree.covers(from_counts(p=3))

    def test_unbounded_net_detected(self, spawn_net):
        tree = KarpMillerTree(spawn_net, from_counts(a=1))
        assert not tree.is_bounded()
        assert tree.place_is_bounded("a")
        assert not tree.place_is_bounded("b")

    def test_unbounded_net_covers_large_targets(self, spawn_net):
        tree = KarpMillerTree(spawn_net, from_counts(a=1))
        assert tree.covers(from_counts(b=1000))

    def test_not_coverable_place(self, spawn_net):
        tree = KarpMillerTree(spawn_net, from_counts(b=3))
        assert not tree.covers(from_counts(a=1))

    def test_node_budget(self):
        # A net with two independent unbounded places grows the tree quickly.
        net = PetriNet(
            [
                Transition({"a": 1}, {"a": 1, "b": 1}),
                Transition({"a": 1}, {"a": 1, "c": 1}),
            ]
        )
        tree = KarpMillerTree(net, from_counts(a=1))
        assert len(tree) >= 1

    def test_agrees_with_backward_coverability(self, swap_net):
        source = from_counts(i=3)
        for target in (from_counts(p=2), from_counts(p=3), from_counts(p=4)):
            tree = KarpMillerTree(swap_net, source)
            assert tree.covers(target) == backward_coverability(swap_net, source, target)
