"""Unit tests for repro.controlstates.pcs."""

import pytest

from repro.controlstates import ControlStatePetriNet, Edge, component_control_net
from repro.core import PetriNet, Transition, from_counts, pairwise


@pytest.fixture
def ring_net():
    """A three-state token ring as a Petri net plus its control-state view."""
    transitions = [
        Transition({"r0": 1}, {"r1": 1}, name="t01"),
        Transition({"r1": 1}, {"r2": 1}, name="t12"),
        Transition({"r2": 1}, {"r0": 1}, name="t20"),
    ]
    net = PetriNet(transitions)
    configurations = [from_counts(r0=1), from_counts(r1=1), from_counts(r2=1)]
    control = component_control_net(net, configurations)
    return net, control


class TestEdge:
    def test_displacement_comes_from_transition(self):
        transition = Transition({"a": 1}, {"b": 1})
        edge = Edge("s", transition, "s'")
        assert edge.displacement() == {"a": -1, "b": 1}

    def test_equality_and_hash(self):
        transition = Transition({"a": 1}, {"b": 1})
        assert Edge("s", transition, "t") == Edge("s", transition, "t")
        assert hash(Edge("s", transition, "t")) == hash(Edge("s", transition, "t"))
        assert Edge("s", transition, "t") != Edge("s", transition, "u")


class TestControlStatePetriNet:
    def test_requires_a_control_state(self):
        with pytest.raises(ValueError):
            ControlStatePetriNet([], PetriNet(), [])

    def test_edge_endpoints_must_be_control_states(self):
        transition = Transition({"a": 1}, {"b": 1})
        net = PetriNet([transition])
        with pytest.raises(ValueError):
            ControlStatePetriNet(["s"], net, [Edge("s", transition, "unknown")])

    def test_edge_transition_must_belong_to_net(self):
        transition = Transition({"a": 1}, {"b": 1})
        other = Transition({"x": 1}, {"y": 1})
        net = PetriNet([transition])
        with pytest.raises(ValueError):
            ControlStatePetriNet(["s"], net, [Edge("s", other, "s")])

    def test_measures(self, ring_net):
        _, control = ring_net
        assert control.num_control_states == 3
        assert control.num_edges == 3

    def test_outgoing(self, ring_net):
        _, control = ring_net
        (edge,) = control.outgoing(from_counts(r0=1))
        assert edge.target == from_counts(r1=1)

    def test_find_path(self, ring_net):
        _, control = ring_net
        path = control.find_path(from_counts(r0=1), from_counts(r2=1))
        assert path is not None
        assert len(path) == 2
        assert control.is_path(path)

    def test_find_path_to_self_is_empty(self, ring_net):
        _, control = ring_net
        assert control.find_path(from_counts(r0=1), from_counts(r0=1)) == []

    def test_strong_connectivity_of_ring(self, ring_net):
        _, control = ring_net
        assert control.is_strongly_connected()

    def test_chain_is_not_strongly_connected(self):
        transitions = [Transition({"a": 1}, {"b": 1}, name="t")]
        net = PetriNet(transitions)
        control = component_control_net(net, [from_counts(a=1), from_counts(b=1)])
        assert not control.is_strongly_connected()

    def test_single_control_state_is_strongly_connected(self):
        net = PetriNet([Transition({"a": 1}, {"a": 1})])
        control = component_control_net(net, [from_counts(a=1)])
        assert control.is_strongly_connected()

    def test_strongly_connected_components(self, ring_net):
        _, control = ring_net
        components = control.strongly_connected_components()
        assert len(components) == 1
        assert components[0] == set(control.control_states)

    def test_scc_of_chain(self):
        transitions = [Transition({"a": 1}, {"b": 1})]
        net = PetriNet(transitions)
        control = component_control_net(net, [from_counts(a=1), from_counts(b=1)])
        components = control.strongly_connected_components()
        assert len(components) == 2


class TestComponentControlNet:
    def test_edges_follow_restricted_firing(self):
        net = PetriNet(
            [
                pairwise(("i", "i"), ("p", "p"), name="fwd"),
                pairwise(("p", "p"), ("i", "i"), name="bwd"),
            ]
        )
        component = [from_counts(i=2), from_counts(p=2)]
        control = component_control_net(net, component)
        assert control.num_edges == 2
        assert control.is_strongly_connected()

    def test_restriction_argument(self):
        net = PetriNet([pairwise(("i", "x"), ("p", "x"), name="t")])
        # Restricted to {i, p}, the transition no longer needs the x agent.
        component = [from_counts(i=1), from_counts(p=1)]
        control = component_control_net(net, component, restriction=["i", "p"])
        assert control.num_edges == 1

    def test_edges_leaving_the_component_are_dropped(self):
        net = PetriNet([pairwise(("i", "i"), ("p", "p"), name="t")])
        control = component_control_net(net, [from_counts(i=2)])
        assert control.num_edges == 0
