"""Golden-trajectory regression tests: committed seed→trajectory pins.

The engine-equivalence suites (test_compiled_engine, test_vectorized_engine)
prove the three engines agree *with each other* — but if a change altered the
RNG discipline identically in all of them (an extra draw per step, a
reordered transition table, a different seed derivation), cross-engine
agreement would still hold while every downstream number silently changed.
The golden files under ``tests/golden/`` pin today's trajectories to disk:
for a committed (protocol, population, scheduler, seed, budget) each file
records the transition-name order, the exact sequence of fired transition
indices, the run's final summary, and the **trajectory analytics** extracted
from the run (firing histogram, first/stable consensus times, predicate
correctness, consensus-fraction curve).  Every engine must reproduce each
golden bit for bit, so RNG-discipline drift — and analytics-extraction
drift — is caught by tier 1 directly.

The goldens are deliberately hash-seed- and platform-independent: transition
indices follow the net's construction-ordered transition tuple, and the
random stream is the stdlib Mersenne Twister, which is reproducible across
Python versions.

Regenerate after an *intentional* semantics change with::

    PYTHONPATH=src python tests/test_golden_trajectories.py --regenerate

and review the resulting diffs like any other behavioral change.
"""

import json
from pathlib import Path

import pytest

from repro.analytics import AnalyticsSpec, extract_run_metrics
from repro.simulation import Simulator
from repro.simulation.vectorized import numpy_available
from repro.sweep import SCHEDULERS, build_predicate_for, build_protocol_and_inputs

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: The committed cases (the regeneration authority; the tests themselves run
#: whatever ``tests/golden/*.json`` contains, so a stale file still bites).
CASE_DEFINITIONS = (
    {
        "name": "majority_uniform",
        "protocol": "majority", "params": {}, "population": 13,
        "scheduler": "uniform", "seed": 2022,
        "max_steps": 400, "stability_window": 80,
    },
    {
        "name": "majority_transition",
        "protocol": "majority", "params": {}, "population": 13,
        "scheduler": "transition", "seed": 9,
        "max_steps": 400, "stability_window": 80,
    },
    {
        "name": "modulo_uniform",
        "protocol": "modulo", "params": {"modulus": 3, "remainder": 1},
        "population": 11, "scheduler": "uniform", "seed": 7,
        "max_steps": 400, "stability_window": 60,
    },
    {
        "name": "succinct_uniform",
        "protocol": "succinct", "params": {"threshold": 4}, "population": 9,
        "scheduler": "uniform", "seed": 11,
        "max_steps": 500, "stability_window": 120,
    },
    {
        "name": "flock_uniform",
        "protocol": "flock", "params": {"threshold": 5}, "population": 12,
        "scheduler": "uniform", "seed": 5,
        "max_steps": 400, "stability_window": 80,
    },
)

#: All three engines must reproduce every golden.  The NumPy engine is
#: exercised when the optional dependency is installed (always in the CI
#: numpy-engine job); the others are unconditional.
ENGINES = ("reference", "compiled", "numpy")


def _golden_paths():
    return sorted(GOLDEN_DIR.glob("*.json"))


def _analytics_spec(case, inputs):
    """The fixed extraction spec of a case: everything on, checkpoints
    derived from the step budget, correctness scored against the registered
    predicate — so the goldens also pin the analytics subsystem."""
    budget = case["max_steps"]
    checkpoints = tuple(
        sorted({0, budget // 8, budget // 4, budget // 2, budget})
    )
    predicate = build_predicate_for(
        case["protocol"], case["population"], case["params"]
    )
    expected = None if predicate is None else predicate.evaluate(inputs)
    return AnalyticsSpec(
        histogram=True,
        consensus_times=True,
        curve_checkpoints=checkpoints,
        expected_output=expected,
    )


def _execute(case, engine):
    """Run a case on one engine: (transition names, fired, summary, metrics)."""
    protocol, inputs = build_protocol_and_inputs(
        case["protocol"], case["population"], case["params"]
    )
    scheduler = SCHEDULERS[case["scheduler"]]()
    simulator = Simulator(
        protocol, scheduler=scheduler, seed=case["seed"], engine=engine
    )
    result = simulator.run(
        inputs,
        max_steps=case["max_steps"],
        stability_window=case["stability_window"],
        record_trajectory=True,
        trajectory_capacity=case["max_steps"],
    )
    assert result.trajectory is not None and result.trajectory.is_complete
    summary = {
        "steps": result.steps,
        "consensus": result.consensus,
        "consensus_step": result.consensus_step,
        "terminated": result.terminated,
        "interactions_sampled": result.interactions_sampled,
        "final_configuration": {
            str(state): count for state, count in result.final.items()
        },
    }
    transition_names = [
        transition.name for transition in protocol.petri_net.transitions
    ]
    metrics = _normalize(
        extract_run_metrics(result, protocol, _analytics_spec(case, inputs))
    )
    return (
        transition_names, list(result.trajectory.transition_indices), summary,
        metrics,
    )


def _normalize(metrics):
    """Metric dicts as their JSON image (tuples -> lists), for comparison
    against the decoded golden payload."""
    return json.loads(json.dumps(metrics))


@pytest.fixture(params=_golden_paths(), ids=lambda path: path.stem)
def golden(request):
    return json.loads(request.param.read_text(encoding="utf-8"))


class TestGoldenTrajectories:
    def test_goldens_exist_for_at_least_three_protocols(self):
        cases = [json.loads(p.read_text(encoding="utf-8")) for p in _golden_paths()]
        assert len({case["protocol"] for case in cases}) >= 3

    def test_transition_order_is_stable(self, golden):
        # The fired indices refer to the net's transition tuple; a reordering
        # would remap every golden silently, so the order itself is pinned.
        protocol, _ = build_protocol_and_inputs(
            golden["protocol"], golden["population"], golden["params"]
        )
        names = [transition.name for transition in protocol.petri_net.transitions]
        assert names == golden["transitions"]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_engine_reproduces_golden(self, golden, engine):
        if engine == "numpy" and not numpy_available():
            pytest.skip("NumPy engine requires the optional 'sim' extra")
        _, fired, summary, _ = _execute(golden, engine)
        assert fired == golden["fired"], (
            f"engine {engine!r} fired a different transition sequence than the "
            f"golden ({golden['protocol']}); if the change of RNG discipline is "
            "intentional, regenerate tests/golden (see module docstring)"
        )
        assert summary == golden["summary"]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_engine_reproduces_golden_metrics(self, golden, engine):
        # The analytics pin: identical trajectories must extract into
        # identical metric dicts on every engine — histogram, consensus
        # times, correctness and curve, bit for bit against the committed
        # values.
        if engine == "numpy" and not numpy_available():
            pytest.skip("NumPy engine requires the optional 'sim' extra")
        _, _, _, metrics = _execute(golden, engine)
        assert metrics == golden["metrics"], (
            f"engine {engine!r} extracted different analytics than the golden "
            f"({golden['protocol']}); if the change of metric semantics is "
            "intentional, regenerate tests/golden (see module docstring)"
        )

    def test_golden_metrics_are_consistent_with_summaries(self, golden):
        # Internal consistency of the committed payloads themselves.
        metrics = golden["metrics"]
        assert metrics["steps"] == golden["summary"]["steps"]
        assert metrics["consensus"] == golden["summary"]["consensus"]
        assert sum(metrics["histogram"]) == len(golden["fired"])
        if metrics["time_to_first_consensus"] is not None:
            assert (
                metrics["time_to_first_consensus"]
                <= metrics["time_to_stable_consensus"]
            )

    def test_goldens_record_nontrivial_runs(self, golden):
        # Guard against regenerating into degenerate pins (e.g. a population
        # so small that nothing ever fires).
        assert len(golden["fired"]) > 0
        assert golden["summary"]["interactions_sampled"] == len(golden["fired"])


def regenerate():
    """Rewrite every golden file from the current reference engine."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    for definition in CASE_DEFINITIONS:
        case = {key: value for key, value in definition.items() if key != "name"}
        transitions, fired, summary, metrics = _execute(case, "reference")
        for engine in ("compiled",) + (("numpy",) if numpy_available() else ()):
            checked = _execute(case, engine)
            if checked != (transitions, fired, summary, metrics):
                raise SystemExit(
                    f"engines disagree on {definition['name']}; refusing to "
                    "regenerate goldens from divergent engines"
                )
        payload = dict(case)
        payload["transitions"] = transitions
        payload["fired"] = fired
        payload["summary"] = summary
        payload["metrics"] = metrics
        path = GOLDEN_DIR / f"{definition['name']}.json"
        path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {path} ({len(fired)} fired transitions)")


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        raise SystemExit(
            "run under pytest, or pass --regenerate to rewrite tests/golden"
        )
    regenerate()
