"""Tests for opt-in trajectory recording (repro.simulation.trajectory).

Covers the ring-buffer truncation semantics (the recorded indices are the
*last* ``capacity`` firings, with the overwritten prefix counted), replay of
complete trajectories to the run's final configuration on both engines, and
the engines agreeing on the recorded paths index for index.
"""

import pytest

from repro.core import Configuration, from_counts
from repro.protocols import flock_of_birds_protocol, majority_protocol
from repro.simulation import Simulator, Trajectory, TransitionScheduler

ENGINES = ("compiled", "reference")


def _record(protocol, inputs, engine, capacity, seed=7, max_steps=500, **kwargs):
    result = Simulator(protocol, seed=seed, engine=engine).run(
        inputs,
        max_steps=max_steps,
        stability_window=10 ** 9,
        record_trajectory=True,
        trajectory_capacity=capacity,
        **kwargs,
    )
    return result


class TestRingBufferSemantics:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_truncation_keeps_the_last_capacity_firings(self, engine):
        protocol = majority_protocol()
        inputs = from_counts(A=20, B=12)
        full = _record(protocol, inputs, engine, capacity=10 ** 6)
        truncated = _record(protocol, inputs, engine, capacity=32)
        assert full.trajectory.is_complete
        assert not truncated.trajectory.is_complete
        assert truncated.trajectory.total_fired == full.trajectory.total_fired
        assert truncated.trajectory.transition_indices == (
            full.trajectory.transition_indices[-32:]
        )
        assert truncated.trajectory.dropped == full.trajectory.total_fired - 32
        assert len(truncated.trajectory) == 32

    @pytest.mark.parametrize("engine", ENGINES)
    def test_exact_capacity_is_complete(self, engine):
        protocol = majority_protocol()
        inputs = from_counts(A=20, B=12)
        full = _record(protocol, inputs, engine, capacity=10 ** 6, max_steps=200)
        fired = full.trajectory.total_fired
        exact = _record(protocol, inputs, engine, capacity=fired, max_steps=200)
        assert exact.trajectory.is_complete
        assert exact.trajectory.transition_indices == full.trajectory.transition_indices

    @pytest.mark.parametrize("engine", ENGINES)
    def test_capacity_one_keeps_only_the_last_firing(self, engine):
        protocol = majority_protocol()
        inputs = from_counts(A=20, B=12)
        full = _record(protocol, inputs, engine, capacity=10 ** 6, max_steps=100)
        tiny = _record(protocol, inputs, engine, capacity=1, max_steps=100)
        assert tiny.trajectory.transition_indices == (
            full.trajectory.transition_indices[-1],
        )
        assert tiny.trajectory.dropped == full.trajectory.total_fired - 1

    def test_invalid_capacity_rejected(self):
        protocol = majority_protocol()
        simulator = Simulator(protocol, seed=0)
        with pytest.raises(ValueError, match="trajectory_capacity"):
            simulator.run(from_counts(A=3, B=1), record_trajectory=True, trajectory_capacity=0)

    def test_terminal_run_records_an_empty_trajectory(self):
        # A single below-threshold agent never interacts.
        protocol = flock_of_birds_protocol(3)
        for engine in ENGINES:
            result = _record(protocol, Configuration({1: 1}), engine, capacity=16)
            assert result.terminated
            assert result.trajectory is not None
            assert result.trajectory.total_fired == 0
            assert len(result.trajectory) == 0
            assert result.trajectory.is_complete

    def test_not_recording_leaves_trajectory_none(self):
        result = Simulator(majority_protocol(), seed=0).run(
            from_counts(A=5, B=2), max_steps=200
        )
        assert result.trajectory is None


class TestReplay:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_complete_trajectory_replays_to_the_final_configuration(self, engine):
        protocol = majority_protocol()
        inputs = from_counts(A=18, B=11)
        result = _record(protocol, inputs, engine, capacity=10 ** 6)
        trajectory = result.trajectory
        assert trajectory.is_complete
        assert len(trajectory) == result.interactions_sampled
        replayed = trajectory.replay(protocol.petri_net, result.initial)
        assert replayed == result.final

    @pytest.mark.parametrize("engine", ENGINES)
    def test_transition_scheduler_trajectories_replay_too(self, engine):
        protocol = flock_of_birds_protocol(4)
        inputs = Configuration({1: 9})
        result = Simulator(
            protocol, seed=11, engine=engine, scheduler=TransitionScheduler()
        ).run(
            inputs,
            max_steps=300,
            stability_window=10 ** 9,
            record_trajectory=True,
            trajectory_capacity=10 ** 6,
        )
        replayed = result.trajectory.replay(protocol.petri_net, result.initial)
        assert replayed == result.final

    def test_truncated_trajectory_refuses_to_replay(self):
        protocol = majority_protocol()
        result = _record(protocol, from_counts(A=20, B=12), "compiled", capacity=8)
        assert not result.trajectory.is_complete
        with pytest.raises(ValueError, match="truncated"):
            result.trajectory.replay(protocol.petri_net, result.initial)

    def test_transitions_resolve_against_net_order(self):
        protocol = majority_protocol()
        net = protocol.petri_net
        result = _record(protocol, from_counts(A=8, B=5), "compiled", capacity=10 ** 6)
        resolved = result.trajectory.transitions(net)
        assert len(resolved) == len(result.trajectory)
        for index, transition in zip(result.trajectory, resolved):
            assert net.transitions[index] is transition


class TestEngineAgreement:
    @pytest.mark.parametrize("seed", [0, 3, 19])
    def test_engines_record_identical_paths(self, seed):
        protocol = majority_protocol()
        inputs = from_counts(A=17, B=9)
        compiled = _record(protocol, inputs, "compiled", capacity=10 ** 6, seed=seed)
        reference = _record(protocol, inputs, "reference", capacity=10 ** 6, seed=seed)
        assert compiled.trajectory == reference.trajectory
        assert compiled.final == reference.final

    def test_engines_agree_on_truncated_paths(self):
        protocol = majority_protocol()
        inputs = from_counts(A=17, B=9)
        compiled = _record(protocol, inputs, "compiled", capacity=25, seed=5)
        reference = _record(protocol, inputs, "reference", capacity=25, seed=5)
        assert compiled.trajectory == reference.trajectory

    def test_recording_does_not_perturb_the_run(self):
        # The recording stepper must consume the random stream exactly like
        # the plain one: same seed with and without recording, same result.
        protocol = majority_protocol()
        inputs = from_counts(A=17, B=9)
        plain = Simulator(protocol, seed=13).run(inputs, max_steps=400)
        recorded = Simulator(protocol, seed=13).run(
            inputs, max_steps=400, record_trajectory=True
        )
        assert recorded.final == plain.final
        assert recorded.steps == plain.steps
        assert recorded.consensus == plain.consensus
        assert recorded.consensus_step == plain.consensus_step


class TestDecoding:
    def test_from_ring_without_wraparound(self):
        trajectory = Trajectory.from_ring([4, 2, 7, 0, 0], total_fired=3, capacity=5)
        assert trajectory.transition_indices == (4, 2, 7)
        assert trajectory.dropped == 0

    def test_from_ring_with_wraparound(self):
        # 7 writes into a 5-slot ring: values 2..6 survive, oldest at 7 % 5 = 2.
        ring = [5, 6, 2, 3, 4]
        trajectory = Trajectory.from_ring(ring, total_fired=7, capacity=5)
        assert trajectory.transition_indices == (2, 3, 4, 5, 6)
        assert trajectory.dropped == 2

    def test_from_ring_exactly_full(self):
        trajectory = Trajectory.from_ring([1, 2, 3], total_fired=3, capacity=3)
        assert trajectory.transition_indices == (1, 2, 3)
        assert trajectory.is_complete
