"""Exhaustive verification tests for the protocol constructions (examples + baselines).

These are the library's integration tests: every construction is checked
against its predicate by exact stable-computation analysis on bounded
populations, exactly as the paper defines stable computation.
"""

import pytest

from repro.analysis import check_protocol, find_counterexample, verify_input
from repro.core import Configuration, from_counts
from repro.protocols import (
    example_4_1_petri_net,
    example_4_1_predicate,
    example_4_1_preorder,
    example_4_1_protocol,
    example_4_2_petri_net,
    example_4_2_predicate,
    example_4_2_protocol,
    flock_of_birds_predicate,
    flock_of_birds_protocol,
    majority_predicate,
    majority_protocol,
    modulo_predicate,
    modulo_protocol,
    succinct_initial_state,
    succinct_leaderless_predicate,
    succinct_leaderless_protocol,
    succinct_leaderless_state_count,
)
from repro.protocols.majority import STATE_A, STATE_B
from repro.protocols.modulo import modulo_initial_state


class TestFlockOfBirds:
    @pytest.mark.parametrize("threshold", [1, 2, 3, 4])
    def test_stably_computes_counting_predicate(self, threshold):
        protocol = flock_of_birds_protocol(threshold)
        report = check_protocol(
            protocol, flock_of_birds_predicate(threshold), max_agents=threshold + 2
        )
        assert report.all_correct, report.failures()

    def test_state_count_is_linear(self):
        assert flock_of_birds_protocol(5).num_states == 6

    def test_is_leaderless_width_two(self):
        protocol = flock_of_birds_protocol(3)
        assert protocol.is_leaderless()
        assert protocol.width == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            flock_of_birds_protocol(0)


class TestExample41:
    @pytest.mark.parametrize("threshold", [1, 2, 3])
    def test_stably_computes_counting_predicate(self, threshold):
        protocol = example_4_1_protocol(threshold)
        report = check_protocol(
            protocol, example_4_1_predicate(threshold), max_agents=threshold + 2
        )
        assert report.all_correct, report.failures()

    def test_has_exactly_two_states(self):
        assert example_4_1_protocol(7).num_states == 2

    def test_width_equals_threshold(self):
        assert example_4_1_protocol(5).width == 5
        assert example_4_1_petri_net(5).num_transitions == 5

    def test_is_conservative(self):
        assert example_4_1_petri_net(4).is_conservative()

    def test_preorder_matches_petri_net_reachability(self):
        threshold = 3
        net = example_4_1_petri_net(threshold)
        preorder = example_4_1_preorder(threshold)
        configurations = [
            from_counts(i=k, p=j) for k in range(threshold + 2) for j in range(threshold + 2)
        ]
        for alpha in configurations:
            for beta in configurations:
                if alpha.size != beta.size:
                    continue
                assert preorder.relates(alpha, beta) == net.is_reachable(alpha, beta)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            example_4_1_protocol(0)


class TestExample42:
    @pytest.mark.parametrize("threshold", [1, 2])
    def test_stably_computes_counting_predicate(self, threshold):
        protocol = example_4_2_protocol(threshold)
        report = check_protocol(
            protocol, example_4_2_predicate(threshold), max_agents=threshold + 2
        )
        assert report.all_correct, report.failures()

    def test_has_six_states_and_width_two(self):
        protocol = example_4_2_protocol(10)
        assert protocol.num_states == 6
        assert protocol.width == 2

    def test_number_of_leaders_equals_threshold(self):
        assert example_4_2_protocol(7).num_leaders == 7

    def test_net_is_conservative(self):
        assert example_4_2_petri_net().is_conservative()

    def test_seven_transitions(self):
        assert example_4_2_petri_net().num_transitions == 7

    def test_larger_threshold_single_input(self):
        # Spot-check a larger threshold on one input (full enumeration is too big).
        protocol = example_4_2_protocol(3)
        verdict = verify_input(protocol, from_counts(i=3), expected=1)
        assert verdict.correct
        verdict = verify_input(protocol, from_counts(i=2), expected=0)
        assert verdict.correct


class TestSuccinctLeaderless:
    @pytest.mark.parametrize("threshold", list(range(1, 10)))
    def test_stably_computes_counting_predicate(self, threshold):
        protocol = succinct_leaderless_protocol(threshold)
        max_agents = min(threshold + 2, 8)
        report = check_protocol(
            protocol, succinct_leaderless_predicate(threshold), max_agents=max_agents
        )
        assert report.all_correct, report.failures()

    @pytest.mark.parametrize("threshold", [1, 2, 3, 4, 7, 8, 100, 2 ** 20])
    def test_state_count_formula_matches_construction(self, threshold):
        protocol = succinct_leaderless_protocol(threshold)
        assert protocol.num_states == succinct_leaderless_state_count(threshold)

    def test_state_count_is_logarithmic(self):
        import math

        for threshold in (2 ** 8, 2 ** 16, 2 ** 20):
            count = succinct_leaderless_state_count(threshold)
            assert count <= 2 * math.log2(threshold) + 3

    def test_width_two_and_leaderless(self):
        protocol = succinct_leaderless_protocol(13)
        assert protocol.width == 2
        assert protocol.is_leaderless()

    def test_large_threshold_rejects_small_population(self):
        # A population far below the threshold must stabilize to 0.
        protocol = succinct_leaderless_protocol(64)
        verdict = verify_input(protocol, Configuration({succinct_initial_state(): 3}), expected=0)
        assert verdict.correct

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            succinct_leaderless_protocol(0)


class TestModulo:
    @pytest.mark.parametrize("modulus,remainder", [(2, 1), (3, 1), (3, 2), (4, 3)])
    def test_stably_computes_modulo_predicate(self, modulus, remainder):
        protocol = modulo_protocol(modulus, remainder)
        predicate = modulo_predicate(modulus, remainder)
        inputs = [
            Configuration({modulo_initial_state(): k}) for k in range(1, modulus * 2 + 2)
        ]
        report = check_protocol(protocol, predicate, max_agents=0, inputs=inputs)
        assert report.all_correct, report.failures()

    def test_state_count(self):
        assert modulo_protocol(5, 2).num_states == 10

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            modulo_protocol(1, 0)


class TestMajority:
    def test_stably_computes_majority(self):
        protocol = majority_protocol()
        report = check_protocol(protocol, majority_predicate(), max_agents=5)
        assert report.all_correct, report.failures()

    def test_tie_goes_to_rejection(self):
        protocol = majority_protocol()
        verdict = verify_input(protocol, from_counts(A=2, B=2), expected=0)
        assert verdict.correct

    def test_four_states_width_two(self):
        protocol = majority_protocol()
        assert protocol.num_states == 4
        assert protocol.width == 2

    def test_no_counterexample_on_bounded_inputs(self):
        assert find_counterexample(majority_protocol(), majority_predicate(), max_agents=4) is None
