"""Unit tests for repro.core.configuration."""

import pytest

from repro.core import Configuration, from_counts, from_sequence, unit, zero


class TestConstruction:
    def test_zero_configuration_is_empty(self):
        assert zero().size == 0
        assert zero().is_zero()
        assert not zero()

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Configuration({"a": -1})

    def test_zero_entries_dropped(self):
        configuration = Configuration({"a": 0, "b": 2})
        assert "a" not in configuration
        assert configuration["a"] == 0
        assert configuration["b"] == 2

    def test_unit_configuration(self):
        configuration = unit("p")
        assert configuration["p"] == 1
        assert configuration.size == 1

    def test_from_counts_keyword_constructor(self):
        configuration = from_counts(i=3, p=1)
        assert configuration["i"] == 3
        assert configuration["p"] == 1

    def test_from_sequence_counts_occurrences(self):
        configuration = from_sequence(["a", "b", "a", "a"])
        assert configuration["a"] == 3
        assert configuration["b"] == 1

    def test_counts_are_copied_not_referenced(self):
        source = {"a": 1}
        configuration = Configuration(source)
        source["a"] = 5
        assert configuration["a"] == 1


class TestMeasures:
    def test_size_is_number_of_agents(self):
        assert from_counts(i=3, p=2).size == 5

    def test_max_value_is_infinity_norm(self):
        assert from_counts(i=3, p=7).max_value == 7
        assert zero().max_value == 0

    def test_support(self):
        assert from_counts(i=1, p=2).support == frozenset({"i", "p"})

    def test_len_counts_distinct_states(self):
        assert len(from_counts(i=1, p=2)) == 2


class TestAlgebra:
    def test_addition_is_componentwise(self):
        total = from_counts(i=1, p=2) + from_counts(i=3)
        assert total == from_counts(i=4, p=2)

    def test_addition_with_zero_is_identity(self):
        configuration = from_counts(i=2)
        assert configuration + zero() == configuration

    def test_subtraction(self):
        assert from_counts(i=3, p=1) - from_counts(i=1) == from_counts(i=2, p=1)

    def test_subtraction_going_negative_raises(self):
        with pytest.raises(ValueError):
            from_counts(i=1) - from_counts(i=2)

    def test_saturating_subtraction_truncates_at_zero(self):
        result = from_counts(i=1, p=3).saturating_sub(from_counts(i=5, p=1))
        assert result == from_counts(p=2)

    def test_scalar_multiplication(self):
        assert 3 * from_counts(i=2) == from_counts(i=6)
        assert from_counts(i=2) * 0 == zero()

    def test_negative_scalar_rejected(self):
        with pytest.raises(ValueError):
            from_counts(i=1) * (-1)

    def test_addition_is_commutative_and_associative(self):
        a, b, c = from_counts(i=1), from_counts(p=2), from_counts(i=1, q=1)
        assert a + b == b + a
        assert (a + b) + c == a + (b + c)


class TestOrder:
    def test_componentwise_order(self):
        assert from_counts(i=1) <= from_counts(i=2, p=1)
        assert not from_counts(i=3) <= from_counts(i=2, p=1)

    def test_strict_order(self):
        assert from_counts(i=1) < from_counts(i=2)
        assert not from_counts(i=1) < from_counts(i=1)

    def test_covers_is_reverse_order(self):
        assert from_counts(i=2, p=1).covers(from_counts(i=1))

    def test_zero_is_least_element(self):
        assert zero() <= from_counts(i=1)

    def test_incomparable_configurations(self):
        a, b = from_counts(i=1), from_counts(p=1)
        assert not a <= b
        assert not b <= a


class TestRestriction:
    def test_restrict_keeps_only_named_states(self):
        configuration = from_counts(i=2, p=3, q=1)
        assert configuration.restrict(["i", "q"]) == from_counts(i=2, q=1)

    def test_restrict_to_missing_states_gives_zero(self):
        assert from_counts(i=2).restrict(["x"]) == zero()

    def test_restrict_to_superset_is_identity(self):
        configuration = from_counts(i=2)
        assert configuration.restrict(["i", "other"]) == configuration

    def test_erase_is_complement_of_restrict(self):
        configuration = from_counts(i=2, p=3)
        assert configuration.erase(["i"]) == from_counts(p=3)

    def test_agrees_on(self):
        a = from_counts(i=2, p=3)
        b = from_counts(i=2, p=5)
        assert a.agrees_on(b, ["i"])
        assert not a.agrees_on(b, ["p"])


class TestHashingAndEquality:
    def test_equal_configurations_hash_equal(self):
        assert hash(from_counts(i=1, p=2)) == hash(Configuration({"p": 2, "i": 1}))

    def test_usable_as_dict_key(self):
        mapping = {from_counts(i=1): "x"}
        assert mapping[Configuration({"i": 1})] == "x"

    def test_zero_entries_do_not_affect_equality(self):
        assert Configuration({"a": 1, "b": 0}) == Configuration({"a": 1})

    def test_set_and_add_return_new_configurations(self):
        configuration = from_counts(i=1)
        assert configuration.set("i", 5) == from_counts(i=5)
        assert configuration.add("p", 2) == from_counts(i=1, p=2)
        assert configuration == from_counts(i=1)

    def test_set_negative_count_raises(self):
        with pytest.raises(ValueError):
            from_counts(i=1).set("i", -1)


class TestRendering:
    def test_pretty_of_zero(self):
        assert zero().pretty() == "0"

    def test_pretty_uses_paper_notation(self):
        assert from_counts(i=2, p=1).pretty() == "2.i + p"

    def test_repr_is_stable(self):
        assert "Configuration" in repr(from_counts(i=1))
