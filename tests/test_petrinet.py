"""Unit tests for repro.core.petrinet."""

import pytest

from repro.core import (
    Configuration,
    ExplorationLimitError,
    PetriNet,
    Transition,
    from_counts,
    pairwise,
    unit,
)


@pytest.fixture
def doubling_net():
    """i + i -> p + p, p + p -> i + i (conservative, strongly reversible)."""
    return PetriNet(
        [
            pairwise(("i", "i"), ("p", "p"), name="fwd"),
            pairwise(("p", "p"), ("i", "i"), name="bwd"),
        ]
    )


@pytest.fixture
def spawn_net():
    """a -> a + b (non-conservative: unbounded)."""
    return PetriNet([Transition({"a": 1}, {"a": 1, "b": 1}, name="spawn")])


class TestStructure:
    def test_states_collected_from_transitions(self, doubling_net):
        assert doubling_net.states == frozenset({"i", "p"})

    def test_explicit_isolated_states_kept(self):
        net = PetriNet([pairwise(("a", "a"), ("b", "b"))], states=["c"])
        assert "c" in net.states
        assert net.num_states == 3

    def test_duplicate_transitions_removed(self):
        t = pairwise(("a", "a"), ("b", "b"))
        net = PetriNet([t, pairwise(("a", "a"), ("b", "b"))])
        assert net.num_transitions == 1

    def test_width_and_max_value(self):
        net = PetriNet([Transition({"a": 3}, {"b": 1})])
        assert net.width == 3
        assert net.max_value == 3

    def test_empty_net(self):
        net = PetriNet()
        assert net.width == 0
        assert net.max_value == 0
        assert net.num_transitions == 0

    def test_is_conservative(self, doubling_net, spawn_net):
        assert doubling_net.is_conservative()
        assert not spawn_net.is_conservative()

    def test_membership_uses_structural_equality(self, doubling_net):
        # __contains__ answers from the cached frozenset, so an equal but
        # distinct Transition object must still be found.
        assert pairwise(("i", "i"), ("p", "p")) in doubling_net
        assert pairwise(("i", "p"), ("p", "i")) not in doubling_net

    def test_restrict_projects_transitions(self, doubling_net):
        restricted = doubling_net.restrict(["i"])
        assert restricted.states == frozenset({"i"})
        assert all(t.states <= {"i"} for t in restricted.transitions)

    def test_reverse_swaps_pre_and_post(self, spawn_net):
        reversed_net = spawn_net.reverse()
        (transition,) = reversed_net.transitions
        assert transition.pre == from_counts(a=1, b=1)
        assert transition.post == from_counts(a=1)

    def test_with_transitions_appends(self, doubling_net):
        extended = doubling_net.with_transitions([pairwise(("i", "p"), ("p", "p"))])
        assert extended.num_transitions == 3
        assert doubling_net.num_transitions == 2


class TestFiring:
    def test_enabled_transitions(self, doubling_net):
        enabled = doubling_net.enabled_transitions(from_counts(i=2))
        assert [t.name for t in enabled] == ["fwd"]

    def test_successors(self, doubling_net):
        successors = doubling_net.successor_set(from_counts(i=2, p=2))
        assert successors == {from_counts(i=4), from_counts(p=4)}

    def test_fire_word(self, doubling_net):
        word = [doubling_net.transitions[0], doubling_net.transitions[1]]
        assert doubling_net.fire_word(from_counts(i=2), word) == from_counts(i=2)

    def test_fire_word_raises_on_disabled_step(self, doubling_net):
        with pytest.raises(ValueError):
            doubling_net.fire_word(from_counts(i=1), [doubling_net.transitions[0]])

    def test_can_fire_word(self, doubling_net):
        fwd = doubling_net.transitions[0]
        assert doubling_net.can_fire_word(from_counts(i=2), [fwd])
        assert not doubling_net.can_fire_word(from_counts(i=1), [fwd])


class TestExploration:
    def test_reachable_set_conservative(self, doubling_net):
        reachable = doubling_net.reachable_set([from_counts(i=3)])
        assert reachable == {from_counts(i=3), from_counts(i=1, p=2)}

    def test_reachability_graph_has_edges(self, doubling_net):
        graph = doubling_net.reachability_graph([from_counts(i=2)])
        assert from_counts(i=2) in graph
        assert len(graph.successors(from_counts(i=2))) == 1

    def test_exploration_limit_raises(self, spawn_net):
        with pytest.raises(ExplorationLimitError):
            spawn_net.reachable_set([from_counts(a=1)], max_nodes=10)

    def test_prune_stops_expansion(self, spawn_net):
        reachable = spawn_net.reachable_set(
            [from_counts(a=1)], max_nodes=100, prune=lambda c: c["b"] >= 3
        )
        assert max(c["b"] for c in reachable) == 3

    def test_find_path_returns_shortest_witness(self, doubling_net):
        path = doubling_net.find_path(from_counts(i=4), from_counts(p=4))
        assert path is not None
        assert len(path) == 2
        assert doubling_net.fire_word(from_counts(i=4), path) == from_counts(p=4)

    def test_find_path_identity(self, doubling_net):
        assert doubling_net.find_path(from_counts(i=2), from_counts(i=2)) == []

    def test_find_path_unreachable(self, doubling_net):
        assert doubling_net.find_path(from_counts(i=1), from_counts(p=1)) is None

    def test_is_reachable(self, doubling_net):
        assert doubling_net.is_reachable(from_counts(i=2), from_counts(p=2))
        assert not doubling_net.is_reachable(from_counts(i=1), from_counts(p=1))

    def test_find_covering_path(self, spawn_net):
        path = spawn_net.find_covering_path(from_counts(a=1), from_counts(b=3), max_nodes=100)
        assert path is not None
        assert len(path) == 3

    def test_find_covering_path_already_covering(self, spawn_net):
        assert spawn_net.find_covering_path(from_counts(a=1, b=5), from_counts(b=3)) == []

    def test_reachability_respects_additivity(self, doubling_net):
        # alpha ->* beta implies alpha + rho ->* beta + rho.
        padding = from_counts(i=1, p=3)
        assert doubling_net.is_reachable(from_counts(i=2) + padding, from_counts(p=2) + padding)


class TestDescribe:
    def test_describe_mentions_every_transition(self, doubling_net):
        text = doubling_net.describe()
        assert "fwd" in text and "bwd" in text
