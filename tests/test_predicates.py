"""Unit tests for repro.core.predicates."""

import pytest

from repro.core import (
    AndPredicate,
    ConstantPredicate,
    CountingPredicate,
    ModuloPredicate,
    NotPredicate,
    OrPredicate,
    ThresholdPredicate,
    counting,
    from_counts,
    zero,
)


class TestCountingPredicate:
    def test_true_at_and_above_threshold(self):
        predicate = counting("i", 3)
        assert predicate(from_counts(i=3)) == 1
        assert predicate(from_counts(i=5)) == 1

    def test_false_below_threshold(self):
        predicate = counting("i", 3)
        assert predicate(from_counts(i=2)) == 0
        assert predicate(zero()) == 0

    def test_initial_states_is_singleton(self):
        assert counting("i", 2).initial_states == frozenset({"i"})

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CountingPredicate("i", 0)

    def test_equality_and_hash(self):
        assert counting("i", 2) == CountingPredicate("i", 2)
        assert hash(counting("i", 2)) == hash(CountingPredicate("i", 2))
        assert counting("i", 2) != counting("i", 3)


class TestThresholdPredicate:
    def test_linear_combination(self):
        predicate = ThresholdPredicate({"a": 2, "b": -1}, 3)
        assert predicate(from_counts(a=2, b=1)) == 1  # 4 - 1 >= 3
        assert predicate(from_counts(a=1, b=0)) == 0  # 2 < 3

    def test_initial_states_are_coefficient_keys(self):
        predicate = ThresholdPredicate({"a": 1, "b": -1}, 0)
        assert predicate.initial_states == frozenset({"a", "b"})

    def test_counting_is_special_case_of_threshold(self):
        threshold = ThresholdPredicate({"i": 1}, 4)
        count = counting("i", 4)
        for k in range(8):
            assert threshold(from_counts(i=k)) == count(from_counts(i=k))


class TestModuloPredicate:
    def test_remainder(self):
        predicate = ModuloPredicate({"a": 1}, 3, 1)
        assert predicate(from_counts(a=1)) == 1
        assert predicate(from_counts(a=4)) == 1
        assert predicate(from_counts(a=3)) == 0

    def test_remainder_normalized(self):
        predicate = ModuloPredicate({"a": 1}, 3, 4)
        assert predicate.remainder == 1

    def test_modulus_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            ModuloPredicate({"a": 1}, 1, 0)

    def test_coefficients(self):
        predicate = ModuloPredicate({"a": 2, "b": 1}, 4, 0)
        assert predicate(from_counts(a=1, b=2)) == 1  # 2 + 2 = 4 = 0 mod 4


class TestBooleanCombinations:
    def test_negation(self):
        predicate = ~counting("i", 2)
        assert predicate(from_counts(i=1)) == 1
        assert predicate(from_counts(i=2)) == 0

    def test_conjunction(self):
        predicate = counting("a", 1) & counting("b", 1)
        assert predicate(from_counts(a=1, b=1)) == 1
        assert predicate(from_counts(a=1)) == 0

    def test_disjunction(self):
        predicate = counting("a", 1) | counting("b", 1)
        assert predicate(from_counts(a=1)) == 1
        assert predicate(from_counts(b=1)) == 1
        assert predicate(zero()) == 0

    def test_combined_initial_states(self):
        predicate = counting("a", 1) & counting("b", 1)
        assert predicate.initial_states == frozenset({"a", "b"})

    def test_de_morgan_on_samples(self):
        a, b = counting("a", 2), counting("b", 1)
        lhs = ~(a & b)
        rhs = (~a) | (~b)
        for x in range(4):
            for y in range(3):
                configuration = from_counts(a=x, b=y)
                assert lhs(configuration) == rhs(configuration)

    def test_constant_predicate(self):
        assert ConstantPredicate(1)(zero()) == 1
        assert ConstantPredicate(0)(from_counts(a=5)) == 0
        with pytest.raises(ValueError):
            ConstantPredicate(2)

    def test_explicit_wrappers(self):
        assert isinstance(~counting("a", 1), NotPredicate)
        assert isinstance(counting("a", 1) & counting("b", 1), AndPredicate)
        assert isinstance(counting("a", 1) | counting("b", 1), OrPredicate)


class TestEnumeration:
    def test_enumerate_inputs_counts(self):
        predicate = counting("i", 2)
        inputs = list(predicate.enumerate_inputs(3))
        assert len(inputs) == 4  # 0, 1, 2, 3 agents in state i

    def test_enumerate_inputs_two_states(self):
        predicate = counting("a", 1) & counting("b", 1)
        inputs = list(predicate.enumerate_inputs(2))
        # configurations over {a, b} with at most 2 agents: 1 + 2 + 3 = 6
        assert len(inputs) == 6
        assert len(set(inputs)) == 6
