"""Direct tests for repro.simulation.statistics edge cases.

The statistics module was previously exercised only through the experiment
runners; these tests pin its behavior on the boundary cases the sweep
harness now depends on (single-run summaries feed one-repetition cells,
max-steps-exhausted runs mix with converged ones in tight-budget sweeps).
"""

import pytest

from repro.core import Configuration
from repro.core.predicates import ThresholdPredicate
from repro.simulation import (
    ConvergenceStatistics,
    SimulationResult,
    accuracy_against_predicate,
    interactions_per_second,
    summarize_runs,
)


def _result(steps, consensus=None, consensus_step=None, terminated=False):
    """A synthetic SimulationResult (the summary only reads these fields)."""
    empty = Configuration({})
    return SimulationResult(
        initial=empty,
        final=empty,
        steps=steps,
        consensus=consensus,
        consensus_step=consensus_step,
        terminated=terminated,
        interactions_sampled=steps,
    )


class TestSummarizeRuns:
    def test_empty_batch_raises(self):
        with pytest.raises(ValueError, match="empty batch"):
            summarize_runs([])

    def test_single_converged_run(self):
        statistics = summarize_runs([_result(40, consensus=1, consensus_step=25)])
        assert statistics.runs == 1
        assert statistics.converged == 1
        assert statistics.convergence_rate == 1.0
        # With one run every aggregate collapses to that run's value.
        assert statistics.mean_steps == 40.0
        assert statistics.median_steps == 40
        assert statistics.min_steps == 40
        assert statistics.max_steps == 40
        assert statistics.mean_consensus_step == 25.0

    def test_single_unconverged_run(self):
        # A lone max-steps-exhausted run: step statistics are still defined,
        # the consensus-step average is not.
        statistics = summarize_runs([_result(1000)])
        assert statistics.runs == 1
        assert statistics.converged == 0
        assert statistics.convergence_rate == 0.0
        assert statistics.mean_steps == 1000.0
        assert statistics.mean_consensus_step is None

    def test_mixed_converged_and_exhausted_runs(self):
        # Two converged runs and two that ran out of budget: step statistics
        # aggregate over all four, consensus statistics over the converged
        # two only — exhausted runs must not drag the consensus average.
        results = [
            _result(100, consensus=1, consensus_step=60),
            _result(5000),  # budget exhausted, no consensus
            _result(200, consensus=0, consensus_step=140),
            _result(5000),  # budget exhausted, no consensus
        ]
        statistics = summarize_runs(results)
        assert statistics.runs == 4
        assert statistics.converged == 2
        assert statistics.convergence_rate == 0.5
        assert statistics.mean_steps == pytest.approx((100 + 5000 + 200 + 5000) / 4)
        assert statistics.median_steps == pytest.approx((200 + 5000) / 2)
        assert statistics.min_steps == 100
        assert statistics.max_steps == 5000
        assert statistics.mean_consensus_step == pytest.approx((60 + 140) / 2)

    def test_terminal_runs_count_as_converged(self):
        # A terminated run with a consensus at step 0 (a single-agent
        # population, say) is converged with consensus_step 0, which must
        # survive the truthiness-unfriendly value 0.
        statistics = summarize_runs(
            [_result(0, consensus=0, consensus_step=0, terminated=True)]
        )
        assert statistics.converged == 1
        assert statistics.mean_consensus_step == 0.0

    def test_convergence_rate_of_zero_runs_is_zero(self):
        # The dataclass itself (not summarize_runs, which rejects empty
        # batches) defines the zero-run rate as 0.0 rather than dividing.
        statistics = ConvergenceStatistics(
            runs=0, converged=0, mean_steps=None, median_steps=None,
            max_steps=None, min_steps=None, mean_consensus_step=None,
        )
        assert statistics.convergence_rate == 0.0


class TestAccuracyAgainstPredicate:
    def _predicate(self):
        return ThresholdPredicate({"x": 1}, 1)  # x >= 1

    def test_empty_results_score_zero(self):
        assert accuracy_against_predicate([], self._predicate(), Configuration({"x": 2})) == 0.0

    def test_unconverged_runs_count_as_incorrect(self):
        inputs = Configuration({"x": 2})  # predicate is true -> expected 1
        results = [
            _result(10, consensus=1, consensus_step=5),
            _result(10),  # no consensus: incorrect
            _result(10, consensus=0, consensus_step=5),  # wrong consensus
            _result(10, consensus=1, consensus_step=9),
        ]
        assert accuracy_against_predicate(results, self._predicate(), inputs) == 0.5


class TestInteractionsPerSecond:
    def test_sums_over_the_batch(self):
        results = [_result(100), _result(300)]
        assert interactions_per_second(results, 2.0) == 200.0

    def test_rejects_nonpositive_elapsed(self):
        with pytest.raises(ValueError, match="positive"):
            interactions_per_second([_result(10)], 0.0)
        with pytest.raises(ValueError, match="positive"):
            interactions_per_second([_result(10)], -1.0)

    def test_rejects_empty_batch(self):
        # Matching the summarize_runs([]) convention: a throughput over no
        # runs is a caller bug (usually an ensemble that never ran), not a
        # silent 0.0.
        with pytest.raises(ValueError, match="empty"):
            interactions_per_second([], 1.0)
