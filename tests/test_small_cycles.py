"""Unit tests for repro.controlstates.small_cycles (Lemmas 7.2 and 7.3)."""

import pytest

from repro.controlstates import (
    Cycle,
    Multicycle,
    component_control_net,
    lemma_7_3_length_bound,
    lemma_7_3_threshold,
    simple_cycle_through,
    small_multicycle,
    total_cycle,
    total_cycle_length_bound,
)
from repro.core import PetriNet, Transition, from_counts, pairwise


@pytest.fixture
def ring():
    transitions = [
        Transition({"r0": 1}, {"r1": 1}, name="t01"),
        Transition({"r1": 1}, {"r2": 1}, name="t12"),
        Transition({"r2": 1}, {"r0": 1}, name="t20"),
        Transition({"r0": 1}, {"r0": 1}, name="loop"),
    ]
    net = PetriNet(transitions)
    configurations = [from_counts(r0=1), from_counts(r1=1), from_counts(r2=1)]
    return component_control_net(net, configurations)


@pytest.fixture
def swap_component():
    """The two-configuration component of the i/p swap net (non-zero displacements)."""
    net = PetriNet(
        [
            pairwise(("i", "i"), ("p", "p"), name="fwd"),
            pairwise(("p", "p"), ("i", "i"), name="bwd"),
        ]
    )
    component = [from_counts(i=2), from_counts(p=2)]
    return component_control_net(net, component)


class TestLemma72:
    def test_simple_cycle_through_every_edge(self, ring):
        for edge in ring.edges:
            cycle = simple_cycle_through(ring, edge)
            assert cycle.parikh_image().get(edge, 0) >= 1
            assert cycle.length <= ring.num_control_states

    def test_total_cycle_is_total_and_small(self, ring):
        cycle = total_cycle(ring)
        assert cycle.is_total(ring)
        assert cycle.length <= total_cycle_length_bound(ring)

    def test_total_cycle_on_swap_component(self, swap_component):
        cycle = total_cycle(swap_component)
        assert cycle.is_total(swap_component)
        assert cycle.length <= total_cycle_length_bound(swap_component)

    def test_total_cycle_requires_strong_connectivity(self):
        net = PetriNet([Transition({"a": 1}, {"b": 1}, name="t")])
        control = component_control_net(net, [from_counts(a=1), from_counts(b=1)])
        with pytest.raises(ValueError):
            total_cycle(control)

    def test_total_cycle_requires_an_edge(self):
        net = PetriNet([Transition({"a": 1}, {"b": 1}, name="t")])
        control = component_control_net(net, [from_counts(a=1)])
        with pytest.raises(ValueError):
            total_cycle(control)

    def test_bound_formula(self, ring):
        assert total_cycle_length_bound(ring) == ring.num_edges * ring.num_control_states


class TestLemma73:
    def test_small_multicycle_zero_displacement(self, ring):
        big = Multicycle([total_cycle(ring).power(5)])
        result = small_multicycle(ring, big, zero_places=[], threshold=1)
        assert result.multicycle.length <= big.length
        # The original displacement is zero on every place, so the small one must be too.
        assert result.multicycle.displacement().is_zero()
        # Every edge is used at least `threshold` times by the big multicycle,
        # so the small one must use every edge.
        assert result.multicycle.is_total(ring)

    def test_small_multicycle_respects_zero_places(self, swap_component):
        cycle = total_cycle(swap_component)
        big = Multicycle([cycle.power(4)])
        result = small_multicycle(swap_component, big, zero_places=["i"], threshold=1)
        assert result.multicycle.displacement()["i"] == 0

    def test_small_multicycle_sign_preservation(self, ring):
        edges = {edge.transition.name: edge for edge in ring.edges}
        # A multicycle made only of loops has zero displacement everywhere.
        loops = Multicycle([Cycle([edges["loop"]]) for _ in range(6)])
        result = small_multicycle(ring, loops, zero_places=["r1"], threshold=3)
        displacement = result.multicycle.displacement()
        assert displacement["r0"] == 0
        assert displacement["r1"] == 0

    def test_small_multicycle_uses_heavy_edges(self, ring):
        edges = {edge.transition.name: edge for edge in ring.edges}
        ring_cycle = Cycle([edges["t01"], edges["t12"], edges["t20"]])
        heavy = Multicycle([ring_cycle] * 5 + [Cycle([edges["loop"]])])
        result = small_multicycle(ring, heavy, zero_places=[], threshold=5)
        parikh = result.multicycle.parikh_image()
        for name in ("t01", "t12", "t20"):
            assert parikh.get(edges[name], 0) > 0

    def test_empty_multicycle_rejected(self, ring):
        with pytest.raises(ValueError):
            small_multicycle(ring, Multicycle([]), zero_places=[], threshold=1)

    def test_threshold_must_be_positive(self, ring):
        big = Multicycle([total_cycle(ring)])
        with pytest.raises(ValueError):
            small_multicycle(ring, big, zero_places=[], threshold=0)

    def test_default_threshold_and_length_bound_are_positive(self, ring):
        big = Multicycle([total_cycle(ring)])
        threshold = lemma_7_3_threshold(ring, big, [], ring.net.num_states)
        assert threshold >= 1
        assert lemma_7_3_length_bound(ring, ring.net.num_states) >= 1

    def test_cycles_of_result_come_from_the_original(self, ring):
        big = Multicycle([total_cycle(ring).power(3)])
        result = small_multicycle(ring, big, zero_places=[], threshold=1)
        original_edges = set(big.parikh_image())
        for cycle in result.multicycle.cycles:
            assert set(cycle.parikh_image()) <= original_edges
