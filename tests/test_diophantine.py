"""Unit tests for repro.algebra.diophantine (Pottier / Hilbert basis)."""

import pytest

from repro.algebra import (
    HomogeneousSystem,
    IntVector,
    decompose_solution,
    hilbert_basis,
    pottier_norm_bound,
)


def make_system(columns):
    return HomogeneousSystem({name: IntVector(entries) for name, entries in columns.items()})


class TestHomogeneousSystem:
    def test_value_and_is_solution(self):
        system = make_system({"x": {"eq": 1}, "y": {"eq": -1}})
        assert system.is_solution(IntVector({"x": 2, "y": 2}))
        assert not system.is_solution(IntVector({"x": 2, "y": 1}))

    def test_negative_assignment_is_not_a_solution(self):
        system = make_system({"x": {"eq": 1}, "y": {"eq": -1}})
        assert not system.is_solution(IntVector({"x": -1, "y": -1}))

    def test_requires_at_least_one_variable(self):
        with pytest.raises(ValueError):
            HomogeneousSystem({})

    def test_pottier_bound_positive(self):
        system = make_system({"x": {"eq": 3}, "y": {"eq": -2}})
        assert system.pottier_bound() == (2 + 5) ** 1


class TestHilbertBasis:
    def test_simple_balance_equation(self):
        # x - y = 0 over N^2: the unique minimal solution is (1, 1).
        system = make_system({"x": {"eq": 1}, "y": {"eq": -1}})
        assert hilbert_basis(system) == [IntVector({"x": 1, "y": 1})]

    def test_weighted_balance_equation(self):
        # 2x - 3y = 0: minimal solution (3, 2).
        system = make_system({"x": {"eq": 2}, "y": {"eq": -3}})
        assert hilbert_basis(system) == [IntVector({"x": 3, "y": 2})]

    def test_three_variable_equation(self):
        # x + y - z = 0: minimal solutions (1,0,1) and (0,1,1).
        system = make_system({"x": {"eq": 1}, "y": {"eq": 1}, "z": {"eq": -1}})
        basis = set(hilbert_basis(system))
        assert basis == {IntVector({"x": 1, "z": 1}), IntVector({"y": 1, "z": 1})}

    def test_no_nontrivial_solutions(self):
        # x + y = 0 over N^2 has only the zero solution.
        system = make_system({"x": {"eq": 1}, "y": {"eq": 1}})
        assert hilbert_basis(system) == []

    def test_two_equations(self):
        # x = y and y = z: minimal solution (1,1,1).
        system = make_system(
            {"x": {"e1": 1}, "y": {"e1": -1, "e2": 1}, "z": {"e2": -1}}
        )
        assert hilbert_basis(system) == [IntVector({"x": 1, "y": 1, "z": 1})]

    def test_every_basis_element_is_a_solution(self):
        system = make_system(
            {"a": {"e": 2, "f": 1}, "b": {"e": -1, "f": 1}, "c": {"e": 0, "f": -2}}
        )
        for element in hilbert_basis(system):
            assert system.is_solution(element)

    def test_basis_elements_are_pairwise_incomparable(self):
        system = make_system(
            {"a": {"e": 2, "f": 1}, "b": {"e": -1, "f": 1}, "c": {"e": 0, "f": -2}}
        )
        basis = hilbert_basis(system)
        for i, first in enumerate(basis):
            for j, second in enumerate(basis):
                if i != j:
                    assert not first <= second

    def test_norms_respect_pottier_bound(self):
        system = make_system(
            {"a": {"e": 2, "f": 1}, "b": {"e": -1, "f": 1}, "c": {"e": 0, "f": -2}}
        )
        bound = system.pottier_bound()
        for element in hilbert_basis(system):
            assert element.norm1 <= bound

    def test_max_solutions_guard(self):
        system = make_system({"x": {"eq": 1}, "y": {"eq": -1}})
        # One minimal solution exists; a guard of 0 must trip.
        with pytest.raises(RuntimeError):
            hilbert_basis(system, max_solutions=0)


class TestDecomposition:
    def test_decomposition_sums_back_to_the_solution(self):
        system = make_system({"x": {"eq": 1}, "y": {"eq": 1}, "z": {"eq": -1}})
        solution = IntVector({"x": 2, "y": 3, "z": 5})
        parts = decompose_solution(system, solution)
        total = IntVector.zero()
        for part in parts:
            total = total + part
        assert total == solution

    def test_decomposition_parts_are_minimal_solutions(self):
        system = make_system({"x": {"eq": 1}, "y": {"eq": 1}, "z": {"eq": -1}})
        basis = set(hilbert_basis(system))
        parts = decompose_solution(system, IntVector({"x": 1, "y": 2, "z": 3}))
        assert all(part in basis for part in parts)

    def test_zero_solution_decomposes_into_nothing(self):
        system = make_system({"x": {"eq": 1}, "y": {"eq": -1}})
        assert decompose_solution(system, IntVector.zero()) == []

    def test_non_solution_rejected(self):
        system = make_system({"x": {"eq": 1}, "y": {"eq": -1}})
        with pytest.raises(ValueError):
            decompose_solution(system, IntVector({"x": 1}))


class TestPottierBound:
    def test_bound_formula(self):
        columns = [IntVector({"e": 3}), IntVector({"e": -1, "f": 2})]
        assert pottier_norm_bound(columns, 2) == (2 + 3 + 2) ** 2

    def test_bound_with_no_equations_still_positive(self):
        assert pottier_norm_bound([], 0) >= 1
