"""Deploy/smoke script for the ``repro.serve`` job server.

Boots a real server subprocess (``python -m repro.serve``) the way a
deployment would, then drives the full service contract through the stdlib
client and asserts every piece of it:

1.  the ready-line protocol: one JSON line on stdout with the bound URL
    (``--port 0`` → ephemeral, so smoke runs never collide),
2.  submit → wait → result, and the result is **byte-identical** to a
    direct in-process ``Simulator.run_many`` with the same content-derived
    seeds,
3.  an identical job respelled (reordered keys, explicit defaults, engine
    case) is a content-addressed cache hit: ``cache_hits`` rises on
    ``/metrics`` and no new pool work runs,
4.  a second in-flight job under ``--max-inflight 1`` is rejected with 429,
5.  SIGTERM drains gracefully: new submissions get 503, the in-flight job
    *completes* (visible in the drain summary), and the process exits 0.

Exits non-zero on the first violated expectation.  Run from the repo root:

    PYTHONPATH=src python scripts/serve_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.serve.client import ServeClient, ServeRejected  # noqa: E402
from repro.serve.jobs import JobSpec  # noqa: E402
from repro.simulation.simulator import Simulator  # noqa: E402
from repro.sweep.spec import build_protocol_and_inputs  # noqa: E402

FAST_JOB = {
    "protocol": "majority",
    "population": 40,
    "repetitions": 4,
    "max_steps": 20000,
}

#: The same job with every field spelled differently (order, case, explicit
#: defaults, integral float) — must hash to the same content key.
FAST_JOB_RESPELLED = {
    "engine": "Auto",
    "max_steps": 20000,
    "population": 40.0,
    "repetitions": 4,
    "scheduler": "uniform",
    "protocol": " Majority ",
    "master_seed": 0,
    "stability_window": 200,
    "analytics": False,
}

#: A job slow enough to still be running when the 429 probe and the SIGTERM
#: arrive: the stability window equals the step budget, so no run can stop
#: early at consensus.
SLOW_JOB = {
    "protocol": "majority",
    "population": 200,
    "repetitions": 4,
    "max_steps": 1200000,
    "stability_window": 1200000,
}


def fail(message):
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)
    print(f"ok: {message}")


def direct_runs(job):
    """The fast job executed in-process — the byte-identity reference."""
    spec = JobSpec.from_dict(job)
    protocol, inputs = build_protocol_and_inputs(
        spec.protocol, spec.population, spec.params
    )
    simulator = Simulator(protocol, engine=spec.engine, seed=spec.ensemble_seed)
    results = simulator.run_many(
        inputs,
        spec.repetitions,
        max_steps=spec.max_steps,
        stability_window=spec.stability_window,
    )
    rendered = [
        {
            "seed": seed,
            "steps": result.steps,
            "consensus": result.consensus,
            "consensus_step": result.consensus_step,
            "converged": result.converged,
            "terminated": result.terminated,
            "interactions_sampled": result.interactions_sampled,
        }
        for seed, result in zip(spec.repetition_seeds(), results)
    ]
    # Normalize exactly like the HTTP layer does (JSON round trip), so the
    # comparison is byte-for-byte against what the server actually serves.
    return json.loads(json.dumps(rendered))


def main():
    # The server subprocess needs the same import path as this script,
    # whether repro is pip-installed (CI) or run from a source tree.
    env = dict(os.environ)
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--port", "0",
            "--backend", "process",
            "--workers", "2",
            "--concurrency", "1",
            "--max-inflight", "1",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        ready = json.loads(proc.stdout.readline())
        check("serving" in ready, f"server ready line: {ready}")
        client = ServeClient(ready["serving"], client_id="smoke")
        check(client.health() == "ok", "healthz answers ok")

        # -- submit, wait, byte-identity --------------------------------
        result = client.run(FAST_JOB, timeout=300)
        check(result["statistics"]["runs"] == 4, "fast job completed 4 runs")
        check(
            result["runs"] == direct_runs(FAST_JOB),
            "served runs byte-identical to direct Simulator.run_many",
        )

        # -- content-addressed cache hit --------------------------------
        respelled = client.submit(FAST_JOB_RESPELLED)
        check(respelled.get("cached") is True, "respelled job is a cache hit")
        check(
            respelled["result"] == result,
            "cached payload identical to the first response",
        )
        metrics = client.metrics()
        check(
            metrics["repro_serve_cache_hits"] == 1,
            "cache_hits=1 on /metrics after the duplicate",
        )
        check(
            metrics["repro_serve_jobs_completed"] == 1,
            "no new pool work for the duplicate (jobs_completed still 1)",
        )

        # -- 429 under the tiny in-flight cap ---------------------------
        submitted = client.submit(SLOW_JOB)
        check(submitted["status"] in ("queued", "running"), "slow job accepted")
        try:
            client.submit(dict(SLOW_JOB, master_seed=1))
            fail("second in-flight job was not rejected")
        except ServeRejected as error:
            check(error.status == 429, "over-cap submission rejected with 429")

        # -- graceful SIGTERM drain -------------------------------------
        proc.send_signal(signal.SIGTERM)
        time.sleep(0.3)
        try:
            client.submit({"protocol": "modulo", "population": 30})
            fail("submission during drain was not rejected")
        except ServeRejected as error:
            check(error.status == 503, "submission during drain rejected with 503")

        out, _ = proc.communicate(timeout=300)
        check(proc.returncode == 0, "server exited 0 after drain")
        summary = json.loads(out.strip().splitlines()[-1])
        check(summary.get("drained") is True, "drain summary printed")
        check(
            summary["jobs_completed"] == 2,
            "in-flight slow job completed during drain",
        )
        check(summary["jobs_failed"] == 0, "no failed jobs")
        print("serve smoke: all checks passed")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
