"""Parameter sweeps: grids of simulation ensembles with resumable tables.

The sweep harness turns the engine/batch stack into a scenario machine: name
the axes once and get back a persisted table with one row per grid cell.
This example:

1. declares a `SweepSpec` over two protocol constructions, three population
   sizes and two engines,
2. runs it over the shared persistent worker pool, with the table flushed
   incrementally to disk as cells finish,
3. interrupts a second copy of the sweep halfway and resumes it, showing the
   resumed table is byte-identical to the uninterrupted one,
4. reads convergence trends (and the built-in cross-engine agreement check)
   out of the finished table.

The same sweep runs from the shell:

    python -m repro.sweep template > sweep.json
    python -m repro.sweep run --spec sweep.json --store results.csv --workers 2
    python -m repro.sweep show --store results.csv

Run with:  python examples/parameter_sweep.py
"""

import tempfile
from pathlib import Path

from repro.sweep import SweepRunner, SweepSpec, open_store, to_experiment_table

SPEC = SweepSpec(
    protocols=("majority", ("succinct", {"threshold": 8})),
    populations=(16, 24, 32),
    schedulers=("uniform",),
    engines=("compiled", "reference"),
    repetitions=4,
    master_seed=2022,
    max_steps=20000,
    stability_window=500,
)


def run_sweep(directory: Path) -> Path:
    """Run the full grid over the shared process pool, persisting as it goes."""
    store_path = directory / "sweep.csv"
    runner = SweepRunner(SPEC, open_store(store_path), backend="process", max_workers=2)
    report = runner.run(progress=print)
    print(
        f"\nfull sweep: {report.executed}/{report.total} cells executed "
        f"-> {store_path}\n"
    )
    return store_path


def interrupt_and_resume(directory: Path, reference: Path) -> None:
    """Stop after half the grid, resume from the store, compare byte for byte."""
    store_path = directory / "interrupted.csv"
    half = SweepRunner(SPEC, open_store(store_path), backend="serial").run(
        max_cells=len(SPEC) // 2
    )
    print(f"interrupted after {half.executed} cells ({half.remaining} remaining)")
    resumed = SweepRunner(SPEC, open_store(store_path), backend="serial").run()
    print(
        f"resumed: {resumed.skipped} cells skipped (already done), "
        f"{resumed.executed} executed"
    )
    identical = store_path.read_bytes() == reference.read_bytes()
    print(f"resumed table byte-identical to the uninterrupted one: {identical}\n")
    assert identical


def read_the_table(store_path: Path) -> None:
    """Render the table and extract a convergence trend from its rows."""
    store = open_store(store_path)
    print(to_experiment_table(store, experiment_id="SWEEP").render())
    rows = [row for row in store.rows() if row["engine"] == "compiled"]
    print("\nmean steps to consensus (compiled rows):")
    for row in rows:
        print(
            f"  {row['protocol']:<10} population {row['population']:>3}: "
            f"{row['mean_steps']:>8.1f} steps "
            f"({row['converged']}/{row['runs']} converged)"
        )
    # Engine rows of one grid point share their ensemble seed, so the
    # reference rows must agree exactly — the table double-checks the
    # engines on every sweep.
    by_scope = {}
    for row in store.rows():
        scope = (row["protocol"], row["params"], row["population"])
        by_scope.setdefault(scope, set()).add(
            (row["mean_steps"], row["converged"])
        )
    assert all(len(values) == 1 for values in by_scope.values())
    print("\ncross-engine agreement: every grid point identical on both engines")


def main() -> None:
    with tempfile.TemporaryDirectory() as name:
        directory = Path(name)
        store_path = run_sweep(directory)
        interrupt_and_resume(directory, store_path)
        read_the_table(store_path)


if __name__ == "__main__":
    main()
