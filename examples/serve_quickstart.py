"""Serving simulations: the job server, its cache, and the client.

The serve layer turns the engine stack into a shared service: a long-lived
process fronts one worker pool, and any number of clients submit ensemble
jobs over HTTP.  Identical requests are *content-addressed* — the job key
hashes what is simulated, not how the request was spelled — so the second
client asking a question the first already asked gets the answer from cache
in microseconds.  This example:

1. starts an in-process server (``BackgroundServer``, ephemeral port — the
   deployment shape is ``python -m repro.serve``),
2. submits a majority-ensemble job through ``ServeClient`` and waits for
   the result,
3. resubmits the same job with the fields spelled differently (reordered,
   defaults written out, engine case changed) and shows it never touches
   the pool: a pure cache hit,
4. reads ``/metrics`` and demonstrates the per-client 429 backpressure cap,
5. drains the server gracefully, like SIGTERM would in production.

Run with:  python examples/serve_quickstart.py
"""

from repro.serve import BackgroundServer, ServeClient, ServeRejected

JOB = {
    "protocol": "majority",
    "population": 60,
    "repetitions": 8,
    "max_steps": 400000,
}

# The same job, spelled as differently as JSON allows: keys reordered,
# optional fields written out at their defaults, the engine name cased
# freely.  Canonicalization maps both spellings to one content key.
SAME_JOB_RESPELLED = {
    "max_steps": 400000,
    "engine": "Auto",
    "repetitions": 8,
    "population": 60.0,
    "scheduler": "uniform",
    "protocol": "  MAJORITY ",
    "master_seed": 0,
}


def main() -> None:
    with BackgroundServer(backend="process", max_workers=2, concurrency=1,
                          max_inflight=2) as background:
        client = ServeClient(background.url, client_id="quickstart")
        print(f"server up at {background.url}  (health: {client.health()})")

        print("\n-- submit and wait ----------------------------------------")
        result = client.run(JOB, timeout=120)
        stats = result["statistics"]
        print(f"ensemble of {stats['runs']}: "
              f"convergence rate {stats['convergence_rate']:.2f}, "
              f"mean steps {stats['mean_steps']:.1f}, "
              f"accuracy {result['accuracy']}")

        print("\n-- identical job, different spelling ----------------------")
        response = client.submit(SAME_JOB_RESPELLED)
        assert response["cached"], "expected a content-addressed cache hit"
        print(f"cached: {response['cached']}  (job key {response['job'][:16]}…)")

        metrics = client.metrics()
        print(f"cache hits {metrics['repro_serve_cache_hits']:.0f}, "
              f"misses {metrics['repro_serve_cache_misses']:.0f}, "
              f"jobs completed {metrics['repro_serve_jobs_completed']:.0f}")

        print("\n-- backpressure -------------------------------------------")
        # Two slow jobs fill the in-flight cap; the third bounces with 429.
        slow = dict(JOB, population=150, max_steps=400000,
                    stability_window=400000)
        client.submit(slow)
        client.submit(dict(slow, master_seed=1))
        try:
            client.submit(dict(slow, master_seed=2))
            print("no backpressure?")
        except ServeRejected as error:
            print(f"third concurrent job rejected: HTTP {error.status}")

        print("\n-- graceful drain -----------------------------------------")
        print("draining (in-flight jobs finish, like SIGTERM in production)…")
    print("server drained and shut down cleanly")


if __name__ == "__main__":
    main()
