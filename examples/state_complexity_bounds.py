"""The state-complexity landscape: the paper's bounds next to the constructions.

This example regenerates, from the library, the picture the paper paints:

* how many states each construction needs for the counting predicate
  ``x >= n`` (experiment E1),
* the Theorem 4.3 upper bound on the threshold decidable with ``|P|`` states
  (experiment E2),
* the lower-bound comparison along the family ``n = 2^(2^j)``: the paper's
  ``(log log n)^h`` bound versus the inverse-Ackermann bound of Czerner &
  Esparza and the ``O(log log n)`` upper bound of Blondin, Esparza & Jaax
  (experiment E3),
* the Section 8 constants for a concrete small protocol.

Run with:  python examples/state_complexity_bounds.py
"""

from repro.analysis import (
    corollary_4_4_lower_bound,
    czerner_esparza_lower_bound,
    min_states_for_threshold,
    section_8_constants_log2,
    theorem_4_3_admits_threshold,
)
from repro.experiments import (
    experiment_e1_state_counts,
    experiment_e2_theorem_4_3,
    experiment_e3_lower_bounds,
)


def print_experiment_tables() -> None:
    """Print the E1/E2/E3 tables (the same data the benchmark suite regenerates)."""
    print(experiment_e1_state_counts().render())
    print()
    print(experiment_e2_theorem_4_3().render())
    print()
    print(experiment_e3_lower_bounds().render())
    print()


def interrogate_the_bounds() -> None:
    """A few concrete questions answered by the bound calculators."""
    n = 2 ** 64
    print(f"How many states does Theorem 4.3 require for n = 2^64 (m = 2)?")
    print(f"  at least {min_states_for_threshold(n, 2)} states")
    print(f"  Corollary 4.4 (h = 0.49) gives {corollary_4_4_lower_bound(n, 2, 0.49):.2f}")
    print(f"  Czerner-Esparza (PODC'21) gives {czerner_esparza_lower_bound(min(n, 10 ** 9))}")
    print()

    print("Can 3 states, width 2 and 2 leaders decide x >= 10^9?")
    print(f"  Theorem 4.3 admits it: {theorem_4_3_admits_threshold(10 ** 9, 3, 2, 2)}")
    print("Can 1 state, width 1 and 0 leaders decide x >= 10^9?")
    print(f"  Theorem 4.3 admits it: {theorem_4_3_admits_threshold(10 ** 9, 1, 1, 0)}")
    print()


def section_8_constants_example() -> None:
    """The Section 8 constants for a 3-state, width-2, single-leader protocol."""
    logs = section_8_constants_log2(3, 2, 1)
    print("Section 8 constants for d=3, ||T||_inf=2, ||rho_L||_inf=1 (log2 scale):")
    for name in ("b", "h", "k", "a", "l", "threshold_bound", "coarse_bound"):
        print(f"  log2 {name:<16} = {logs[name]:.3g}")


def main() -> None:
    print_experiment_tables()
    interrogate_the_bounds()
    section_8_constants_example()


if __name__ == "__main__":
    main()
