"""Convergence analysis: trajectory analytics over a recorded ensemble.

The analytics subsystem turns recorded simulation paths into the paper's
quantities of interest — how fast consensus emerges, which interactions do
the work, and where two runs diverge.  This example:

1. runs a 64-repetition majority ensemble over a persistent worker pool with
   the ``analytics=`` knob, so each worker extracts a compact metric dict
   in place of the full trajectory ring,
2. aggregates the per-run metrics into time-to-consensus quantiles and a
   pooled firing histogram,
3. samples a consensus-fraction-over-time curve for a single recorded run,
4. diffs a uniform-scheduler run against a transition-scheduler run (same
   protocol, same seed) to pinpoint the step where the disciplines split —
   and an engine-vs-engine pair to show they *don't*.

The same analyses run from the shell:

    python -m repro.analytics report --store results.csv
    python -m repro.analytics hist --protocol majority --population 40 --seed 7
    python -m repro.analytics diff --protocol majority --population 40 --seed 7 \\
        --vs-scheduler transition

Run with:  python examples/convergence_analysis.py
"""

from repro.analytics import (
    AnalyticsSpec,
    aggregate_run_metrics,
    describe_diff,
    diff_results,
    extract_run_metrics,
    top_transitions,
)
from repro.simulation import BatchRunner, Simulator, TransitionScheduler
from repro.sweep import build_predicate_for, build_protocol_and_inputs

POPULATION = 40
SEED = 7
MAX_STEPS = 20000


def ensemble_analytics(protocol, inputs, expected):
    """In-worker extraction over a pooled ensemble, then aggregation."""
    spec = AnalyticsSpec(expected_output=expected)
    with BatchRunner(protocol, max_workers=2) as runner:
        results = runner.run_many(
            inputs, 64, seed=SEED, max_steps=MAX_STEPS, analytics=spec
        )
    # The workers consumed the trajectory rings locally: only metrics travel.
    assert all(r.trajectory is None and r.analytics is not None for r in results)

    aggregated = aggregate_run_metrics([r.analytics for r in results])
    q10, q50, q90 = aggregated.stable_consensus_quantiles
    print(f"ensemble of {aggregated.runs} runs, population {POPULATION}:")
    print(f"  accuracy vs majority predicate: {aggregated.accuracy:.2f}")
    print(f"  time to stable consensus: q10={q10:.0f}  q50={q50:.0f}  q90={q90:.0f}")
    names = [t.name for t in protocol.petri_net.transitions]
    print("  pooled firing histogram (top 3):")
    for name, count in top_transitions(aggregated.histogram, names, k=3):
        print(f"    {name:<12} fired {count} times")
    print()


def consensus_curve(protocol, inputs):
    """How the consensus fraction builds up along one recorded run."""
    simulator = Simulator(protocol, seed=SEED)
    result = simulator.run(
        inputs, max_steps=MAX_STEPS, record_trajectory=True,
        trajectory_capacity=MAX_STEPS,
    )
    checkpoints = tuple(sorted({
        step for step in (0, 50, 100, 250, 500, 1000, 2500, 5000)
        if step <= result.steps
    } | {result.steps}))
    spec = AnalyticsSpec(curve_checkpoints=checkpoints)
    metrics = extract_run_metrics(result, protocol, spec)
    print(
        f"single run: consensus {result.consensus} "
        f"(first at step {metrics['time_to_first_consensus']}, "
        f"stable from {metrics['time_to_stable_consensus']})"
    )
    print("  consensus fraction over time:")
    for step, fraction in metrics["curve"]:
        bar = "#" * round(fraction * 40)
        print(f"    step {step:>6}: {fraction:5.1%} {bar}")
    print()


def diff_schedulers_and_engines(protocol, inputs):
    """Where does the transition scheduler split from the uniform one?"""

    def recorded(scheduler=None, engine="auto"):
        simulator = Simulator(protocol, scheduler=scheduler, seed=SEED, engine=engine)
        return simulator.run(
            inputs, max_steps=MAX_STEPS, record_trajectory=True,
            trajectory_capacity=MAX_STEPS,
        )

    uniform = recorded()
    transition = recorded(scheduler=TransitionScheduler())
    print("uniform vs transition scheduler (same seed):")
    print(
        describe_diff(
            diff_results(uniform, transition), net=protocol.petri_net,
            label_a="uniform", label_b="transition",
        )
    )
    print()
    compiled = recorded(engine="compiled")
    reference = recorded(engine="reference")
    print("compiled vs reference engine (same seed):")
    diff = diff_results(compiled, reference)
    print(
        describe_diff(
            diff, net=protocol.petri_net,
            label_a="compiled", label_b="reference",
        )
    )
    assert diff.identical, "engines must fire identical trajectories"


def main() -> None:
    protocol, inputs = build_protocol_and_inputs("majority", POPULATION, {})
    predicate = build_predicate_for("majority", POPULATION, {})
    ensemble_analytics(protocol, inputs, predicate.evaluate(inputs))
    consensus_curve(protocol, inputs)
    diff_schedulers_and_engines(protocol, inputs)


if __name__ == "__main__":
    main()
