"""Trace a sweep: structured spans from grid cells down to single runs.

The observability layer (:mod:`repro.obs`) records what a computation *did*
— which cells ran, how long each repetition took, where the wall-clock went
between queueing and execution — without perturbing what it *computed*:
instrumentation reads clocks and result objects, never the RNG stream, so a
traced sweep is bit-identical to an untraced one.  This example:

1. runs a small majority sweep twice — serial, then over a 2-process worker
   pool — with a JSONL tracer installed, so every sweep cell, pool dispatch,
   worker chunk, and individual run emits a span,
2. walks the span tree of the process-backed trace to show the layers
   (sweep-cell → dispatch → chunk → run) and where the time went,
3. canonicalizes both traces (timing and topology attributes stripped) and
   verifies they are **byte-identical** — the logical execution does not
   depend on the backend,
4. enables the engine profiler for the serial pass and prints the
   metrics-registry rendering of its per-engine counters in Prometheus
   text exposition format.

The same inspection runs from the shell against any trace file:

    REPRO_TRACE=1 REPRO_TRACE_PATH=sweep.jsonl python -m repro.sweep run ...
    python -m repro.obs summary sweep.jsonl
    python -m repro.obs timeline sweep.jsonl
    python -m repro.obs canon sweep.jsonl -o sweep.canon.jsonl

Run with:  python examples/trace_a_sweep.py
"""

import tempfile
from pathlib import Path

from repro.obs import profile as obs_profile
from repro.obs import render
from repro.obs import trace as obs_trace
from repro.obs.registry import get_registry
from repro.sweep import MemoryResultStore, SweepRunner, SweepSpec


def build_spec() -> SweepSpec:
    return SweepSpec(
        protocols=("majority",),
        populations=(16, 24),
        schedulers=("uniform",),
        engines=("compiled",),
        repetitions=4,
        master_seed=2022,
        max_steps=2000,
        stability_window=100,
    )


def traced_sweep(path: Path, backend: str) -> None:
    obs_trace.install_tracer(obs_trace.Tracer(str(path)))
    try:
        kwargs = {"max_workers": 2} if backend == "process" else {}
        report = SweepRunner(
            build_spec(), MemoryResultStore(), backend=backend, **kwargs
        ).run()
    finally:
        obs_trace.uninstall_tracer()
    print(f"  {backend}: executed {report.executed} cells -> {path.name}")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    serial_path = workdir / "serial.jsonl"
    process_path = workdir / "process.jsonl"

    print("== 1. Run the sweep under a tracer, on both backends ==")
    # Profiler on for the serial pass: per-engine run/step counters and the
    # steps/sec gauge accumulate in the process-wide registry (workers keep
    # their own registries, so the process pass profiles there, not here).
    obs_profile.enable_profiling(sample_every=4)
    try:
        traced_sweep(serial_path, "serial")
    finally:
        obs_profile.disable_profiling()
    traced_sweep(process_path, "process")

    print()
    print("== 2. The span tree of the process-backed sweep ==")
    events = render.load_events(str(process_path))
    print(render.timeline(events))

    print("== 3. Canonical traces are byte-identical across backends ==")
    canon_serial = render.canon(render.load_events(str(serial_path)))
    canon_process = render.canon(events)
    assert canon_serial.encode() == canon_process.encode()
    lines = canon_serial.splitlines()
    print(f"  {len(lines)} canonical records, identical bytes; first record:")
    print(f"    {lines[0]}")

    print()
    print("== 4. Profiler counters accumulated in the process-wide registry ==")
    text = get_registry().render()
    for line in text.splitlines():
        if line.startswith(
            ("repro_engine_runs_total", "repro_engine_steps_total",
             "repro_engine_steps_per_second")
        ):
            print(f"  {line}")

    print()
    print(f"traces kept in {workdir} — inspect with python -m repro.obs")


if __name__ == "__main__":
    main()
