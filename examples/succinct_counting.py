"""Succinct counting protocols: the O(log n) construction in action.

The upper-bound side of the paper's story (Blondin, Esparza & Jaax): counting
predicates admit protocols far smaller than the classic ``n + 1``-state one.
This example:

1. builds the ``O(log n)``-state leaderless protocol for several thresholds
   and compares its size against the classic protocol,
2. verifies the construction exhaustively for small thresholds,
3. simulates it on populations around the threshold and reports accuracy and
   convergence statistics,
4. shows where the paper's lower bound (Corollary 4.4) sits below these
   constructions.

Run with:  python examples/succinct_counting.py
"""

from repro.analysis import check_protocol, corollary_4_4_lower_bound
from repro.core import Configuration
from repro.protocols import (
    succinct_initial_state,
    succinct_leaderless_predicate,
    succinct_leaderless_protocol,
    succinct_leaderless_state_count,
)
from repro.simulation import BatchRunner, accuracy_against_predicate, summarize_runs


def size_comparison() -> None:
    """State counts: classic n+1 vs the succinct construction vs the lower bound."""
    print(f"{'n':>12} {'classic':>10} {'succinct':>10} {'lower bound (h=0.49)':>22}")
    for exponent in (3, 6, 10, 16, 32, 64):
        threshold = 2 ** exponent
        succinct = succinct_leaderless_state_count(threshold)
        lower = corollary_4_4_lower_bound(threshold, 2, 0.49)
        print(f"{threshold:>12} {threshold + 1:>10} {succinct:>10} {lower:>22.2f}")
    print()


def verify_small_thresholds() -> None:
    """Exhaustive stable-computation checks for small thresholds."""
    for threshold in (3, 5, 6, 7, 8):
        protocol = succinct_leaderless_protocol(threshold)
        report = check_protocol(
            protocol,
            succinct_leaderless_predicate(threshold),
            max_agents=min(threshold + 2, 8),
        )
        print(report.summary())
    print()


def simulate_around_the_threshold() -> None:
    """Simulation accuracy just below and just above the threshold.

    Note on the stability window: until the accepting state appears, every
    configuration of the succinct protocol is a 0-consensus, so the window
    must be generous enough that acceptance has a real chance to happen before
    the run is declared converged.
    """
    threshold = 8
    protocol = succinct_leaderless_protocol(threshold)
    predicate = succinct_leaderless_predicate(threshold)
    # The compiled engine makes the long stability windows below cheap, and the
    # batch runner fans the independent repetitions out over worker processes;
    # the per-repetition seeds are derived before scheduling, so the ensemble
    # is bit-identical to a serial backend="serial" run of the same seed.
    # The runner's worker pool is persistent — built once on the first
    # ensemble, reused for every following population, and released by the
    # `with` block — so only the first run_many pays pool startup and
    # per-worker stepper compilation.
    with BatchRunner(
        protocol, engine="compiled", backend="process", max_workers=2
    ) as runner:
        for population in (threshold - 2, threshold, threshold + 6):
            inputs = Configuration({succinct_initial_state(): population})
            results = runner.run_many(
                inputs, repetitions=5, seed=7, max_steps=500000, stability_window=30000
            )
            stats = summarize_runs(results)
            accuracy = accuracy_against_predicate(results, predicate, inputs)
            print(
                f"population {population:>3} (threshold {threshold}): accuracy {accuracy:.0%}, "
                f"mean interactions {stats.mean_steps:.0f}"
            )


def main() -> None:
    size_comparison()
    verify_small_thresholds()
    simulate_around_the_threshold()


if __name__ == "__main__":
    main()
