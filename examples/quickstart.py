"""Quickstart: define a protocol, verify it, simulate it, and check the paper's bound.

This example walks through the core workflow of the library:

1. build the classical flock-of-birds protocol for the counting predicate
   ``x >= 4``,
2. verify exhaustively (on bounded populations) that it stably computes the
   predicate, exactly as Section 2 of the paper defines stable computation,
3. simulate it on a larger population under the uniform random scheduler,
4. record one run's trajectory (the fired transitions) and replay it,
5. evaluate the Theorem 4.3 inequality on the protocol.

Run with:  python examples/quickstart.py
"""

from repro.analysis import check_protocol, theorem_4_3_holds_for_protocol
from repro.core import Configuration
from repro.protocols import flock_of_birds_predicate, flock_of_birds_protocol
from repro.simulation import Simulator, summarize_runs

THRESHOLD = 4


def main() -> None:
    # 1. Build the protocol: n + 1 states, width 2, leaderless.
    protocol = flock_of_birds_protocol(THRESHOLD)
    predicate = flock_of_birds_predicate(THRESHOLD)
    print(protocol.describe())
    print()

    # 2. Exhaustive verification on populations of at most THRESHOLD + 2 agents.
    report = check_protocol(protocol, predicate, max_agents=THRESHOLD + 2)
    print(report.summary())
    for verdict in report.verdicts:
        status = "ok" if verdict.correct else "FAIL"
        print(
            f"  input {verdict.inputs.pretty():>4}: expected {verdict.expected}, "
            f"computed {verdict.computed} [{status}]"
        )
    print()

    # 3. Simulation on a larger population (20 agents) with a fixed seed, on
    #    the compiled dense-array engine.  Three engines share bit-identical
    #    semantics: engine="reference" (sparse baseline), engine="compiled"
    #    (generated steppers, best for small nets like this one), and
    #    engine="numpy" (vectorized kernels, best beyond a few hundred
    #    transitions; needs the 'sim' extra).  engine="auto" — the default —
    #    picks by transition count.
    simulator = Simulator(protocol, seed=2022, engine="compiled")
    inputs = protocol.counting_input(20)
    results = simulator.run_many(inputs, repetitions=10, max_steps=50000)
    stats = summarize_runs(results)
    print(
        f"simulation on {inputs.size} agents: {stats.converged}/{stats.runs} runs converged, "
        f"mean interactions to consensus = {stats.mean_consensus_step:.1f}"
    )
    print()

    # 4. Trajectory recording: both engines can record the fired transition
    #    indices into a bounded ring buffer; a complete trajectory replays on
    #    the net to exactly the run's final configuration.
    result = simulator.run(inputs, max_steps=50000, record_trajectory=True)
    trajectory = result.trajectory
    replayed = trajectory.replay(protocol.petri_net, result.initial)
    last = [t.name or "?" for t in trajectory.transitions(protocol.petri_net)[-3:]]
    print(
        f"recorded trajectory: {len(trajectory)} firings (dropped {trajectory.dropped}), "
        f"last transitions {last}, replay matches final: {replayed == result.final}"
    )
    print()

    # 5. Theorem 4.3: the protocol's parameters admit the threshold it decides.
    holds = theorem_4_3_holds_for_protocol(protocol, THRESHOLD)
    print(
        f"Theorem 4.3 inequality for (x >= {THRESHOLD}) with |P|={protocol.num_states}, "
        f"width={protocol.width}, leaders={protocol.num_leaders}: {'holds' if holds else 'VIOLATED'}"
    )


if __name__ == "__main__":
    main()
