"""The paper's worked examples: Example 4.1 and Example 4.2.

Section 4 of the paper shows that counting states *without* bounding the
interaction-width or the number of leaders is meaningless:

* Example 4.1 decides ``x >= n`` with **2 states** but interaction-width ``n``,
* Example 4.2 decides ``x >= n`` with **6 states** and width 2 but ``n`` leaders.

This example builds both protocols for a small threshold, verifies them
exhaustively, inspects the 0-output-stable (stabilized) configurations of
Example 4.2 with the Section 5 machinery, and prints the state/width/leader
trade-off table.

Run with:  python examples/paper_examples.py
"""

from repro.analysis import check_protocol, is_stabilized, stabilization_certificate
from repro.core import Configuration
from repro.protocols import (
    example_4_1_predicate,
    example_4_1_protocol,
    example_4_2_predicate,
    example_4_2_protocol,
    flock_of_birds_protocol,
)
from repro.protocols.example_4_2 import (
    STATE_I_BAR,
    STATE_P_BAR,
    STATE_Q_BAR,
    example_4_2_petri_net,
)

THRESHOLD = 3


def verify_examples() -> None:
    """Exhaustively verify both examples for the chosen threshold."""
    example41 = example_4_1_protocol(THRESHOLD)
    report41 = check_protocol(example41, example_4_1_predicate(THRESHOLD), max_agents=THRESHOLD + 2)
    print(report41.summary())

    example42 = example_4_2_protocol(THRESHOLD)
    report42 = check_protocol(example42, example_4_2_predicate(THRESHOLD), max_agents=THRESHOLD + 1)
    print(report42.summary())
    print()


def inspect_stabilized_configurations() -> None:
    """Section 5 on Example 4.2: stabilized configurations and their certificates."""
    net = example_4_2_petri_net()
    rejecting_states = frozenset({STATE_I_BAR, STATE_P_BAR, STATE_Q_BAR})

    base = Configuration({STATE_I_BAR: THRESHOLD})
    print(f"is {base.pretty()} (T, gamma^-1(0))-stabilized?",
          is_stabilized(net, base, rejecting_states))

    certificate = stabilization_certificate(net, base, rejecting_states)
    print(f"Lemma 5.4 certificate: {certificate}")
    for candidate in (
        Configuration({STATE_I_BAR: 1}),
        Configuration({STATE_I_BAR: 2, STATE_P_BAR: 0}),
        Configuration({STATE_P_BAR: 1}),
    ):
        print(
            f"  certificate implies {candidate.pretty():>8} stabilized:",
            certificate.implies_stabilized(candidate),
        )
    print()


def trade_off_table() -> None:
    """The state/width/leader trade-off of Section 4."""
    rows = []
    classic = flock_of_birds_protocol(THRESHOLD)
    rows.append(("classic flock-of-birds", classic.num_states, classic.width, classic.num_leaders))
    example41 = example_4_1_protocol(THRESHOLD)
    rows.append(("Example 4.1", example41.num_states, example41.width, example41.num_leaders))
    example42 = example_4_2_protocol(THRESHOLD)
    rows.append(("Example 4.2", example42.num_states, example42.width, example42.num_leaders))

    print(f"trade-offs for the counting predicate (x >= {THRESHOLD}):")
    print(f"  {'protocol':<24} {'states':>6} {'width':>6} {'leaders':>8}")
    for name, states, width, leaders in rows:
        print(f"  {name:<24} {states:>6} {width:>6} {leaders:>8}")


def main() -> None:
    verify_examples()
    inspect_stabilized_configurations()
    trade_off_table()


if __name__ == "__main__":
    main()
