"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works with the legacy (non-PEP-660) editable install
path on offline machines where ``wheel`` is unavailable.
"""

from setuptools import setup

setup()
