"""Benchmark E1 — state counts of every construction for the counting predicate.

Regenerates the comparison the paper's introduction is about: the classic
protocol needs ``n + 1`` states, the paper's Examples 4.1/4.2 need O(1) states
by cheating on width/leaders, the BEJ constructions need ``O(log n)`` /
``O(log log n)`` states, and Corollary 4.4 lower-bounds the achievable count.
"""

from conftest import report

from repro.experiments import experiment_e1_state_counts


def test_bench_e1_state_counts(benchmark):
    table = benchmark(experiment_e1_state_counts)
    classic = table.column("classic (n+1)")
    succinct = table.column("BEJ leaderless O(log n)")
    loglog = table.column("BEJ leaders O(log log n)")
    lower = table.column("Cor. 4.4 lower bound (h=0.49)")
    # Shape: for the largest thresholds, classic >> log n >> log log n >= lower bound.
    assert classic[-1] > succinct[-1] > loglog[-1]
    assert all(l <= u for l, u in zip(lower, succinct))
    report(table)
