"""Benchmark E10 — parallel batch throughput of the process backend.

Runs a seeded majority ensemble at population 1000 once on the serial backend
and once per worker count on the ``multiprocessing`` backend.  The experiment
itself raises if any parallel ensemble diverges from the serial one (the
per-repetition seeds are derived before scheduling, so results must be
bit-identical), which makes the benchmark double as a determinism check.

The headline claim — parallel ``run_many`` throughput at least 2x serial with
4 workers — only holds where 4 hardware threads exist, so that assertion is
gated on the visible CPU count; the determinism cross-check runs everywhere.
"""

import os

from conftest import report

from repro.experiments import experiment_e10_parallel_batch


def test_bench_e10_parallel_batch(benchmark):
    table = benchmark.pedantic(experiment_e10_parallel_batch, rounds=1, iterations=1)
    speedup_at = {
        row["workers"]: row["speedup"] for row in table.rows if row["backend"] == "process"
    }
    assert set(speedup_at) == {1, 2, 4}
    assert all(speedup > 0.0 for speedup in speedup_at.values())
    if (os.cpu_count() or 1) >= 4:
        assert speedup_at[4] >= 2.0
    report(table)
