"""Benchmark E9 — simulation throughput of the compiled engine.

Measures interactions per second of the compiled dense-array engine against
the sparse reference engine on the majority protocol, and asserts the
headline claim: at population 1000 the compiled engine sustains at least 10x
the reference engine's throughput while producing the exact same trajectory
(the experiment itself raises if the engines diverge).
"""

from conftest import report

from repro.experiments import experiment_e9_simulation_throughput


def test_bench_e9_simulation_throughput(benchmark):
    table = benchmark.pedantic(experiment_e9_simulation_throughput, rounds=1, iterations=1)
    speedup_at = {
        row["population"]: row["speedup"] for row in table.rows if row["engine"] == "compiled"
    }
    assert all(speedup > 1.0 for speedup in speedup_at.values())
    assert speedup_at[1000] >= 10.0
    report(table)
