"""Benchmark E3 — the paper's lower bound vs Czerner–Esparza vs the BEJ upper bounds.

Regenerates the bound-comparison figure along the family ``n = 2^(2^j)``: the
inverse-Ackermann bound of PODC'21 stays at 3 while the paper's
``(log log n)^h`` bound tracks the ``O(log log n)`` upper bound.
"""

from conftest import report

from repro.experiments import experiment_e3_lower_bounds


def test_bench_e3_lower_bounds(benchmark):
    table = benchmark(experiment_e3_lower_bounds)
    czerner = table.column("Czerner-Esparza A^{-1}(n)")
    leroux = table.column("Leroux h=0.49")
    upper = table.column("BEJ upper (leaders)")
    # The PODC'21 bound is constant (<= 3) on every row.
    assert all(value <= 3 for value in czerner)
    # The paper's bound is monotone and stays below the upper bound.
    assert all(a <= b for a, b in zip(leroux, leroux[1:]))
    assert all(l <= u for l, u in zip(leroux, upper))
    report(table)
