"""Benchmark E7 — Lemma 7.2/7.3: small total cycles and the Pottier machinery.

Regenerates the total-cycle construction on control-state nets built from
protocol components and checks the ``|E||S|`` length bound.
"""

from conftest import report

from repro.experiments import experiment_e7_cycles


def test_bench_e7_cycles(benchmark):
    table = benchmark(experiment_e7_cycles)
    assert len(table) >= 2
    for row in table.rows:
        assert row["within bound"]
        assert row["total cycle length"] >= row["|E|"]
    report(table)
