"""Benchmark E11 — large-net throughput of the NumPy engine + pool amortization.

Two claims are measured, and their data points are written to
``BENCH_e11.json`` at the repository root so the performance trajectory of
the engines is recorded across PRs:

1. **Large nets** (:func:`experiment_e11_large_net_throughput`): on random
   width-2 nets swept over the transition count, the NumPy engine's
   steady-state throughput overtakes the compiled engine's around the
   ``engine="auto"`` threshold and is at least 3x faster on multi-thousand-
   transition nets — where the compiled engine also pays seconds of codegen
   per (net, process) that the NumPy engine does not pay at all, and beyond
   ~2500 transitions stops working entirely (the generated dispatch chain
   overflows the CPython compiler).  The experiment cross-checks the
   engines' final configurations, step counts and consensus values, so the
   benchmark doubles as an equivalence check (exact step-for-step trajectory
   equality is the test suite's job).  Sweep points where codegen fails
   report their speedup against a labeled reference-engine fallback
   baseline (extrapolated from a short run) rather than empty cells.

2. **Persistent pools**: a :class:`~repro.simulation.batch.BatchRunner`
   builds its worker pool once; a second ``run_many`` on the same runner
   skips pool startup, protocol unpickling and per-worker stepper
   compilation, and must be at least 1.5x faster than the build-per-call
   behavior (a fresh runner per ensemble, which is what every call paid
   before the persistent lifecycle existed) — while remaining bit-identical
   to both the fresh-pool and the serial ensembles.

Requires NumPy (the ``sim`` extra); both tests are skipped without it.
"""

import json
import random
import time
from pathlib import Path

import pytest

pytest.importorskip("numpy", reason="benchmark E11 measures the NumPy engine")

from conftest import report

from repro.experiments import (
    experiment_e11_large_net_throughput,
    random_interaction_protocol,
)
from repro.simulation import BatchRunner

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_e11.json"


def _update_artifact(key, payload):
    """Merge one section into BENCH_e11.json (both tests write to it)."""
    data = {}
    if ARTIFACT_PATH.exists():
        try:
            data = json.loads(ARTIFACT_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[key] = payload
    ARTIFACT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_bench_e11_large_net_throughput(benchmark):
    table = benchmark.pedantic(
        experiment_e11_large_net_throughput, rounds=1, iterations=1
    )
    rows = {(row["transitions"], row["engine"]): row for row in table.rows}

    # Crossover: the compiled engine still wins steady-state on tiny nets...
    assert rows[(50, "numpy")]["speedup"] < 1.0
    # ...the NumPy engine wins on a 1000-transition net...
    assert rows[(1000, "numpy")]["speedup"] > 1.0
    # ...and including the codegen the compiled engine pays per (net,
    # process), the NumPy engine is >= 3x faster already at 1000 transitions.
    assert rows[(1000, "numpy")]["e2e speedup"] >= 3.0
    # Headline: >= 3x steady-state on a multi-thousand-transition net,
    # measured against the compiled engine itself.
    big_speedups = [
        row["speedup"]
        for (transitions, engine), row in rows.items()
        if engine == "numpy"
        and transitions >= 1000
        and row["baseline"] == "compiled"
        and row["speedup"] is not None
    ]
    assert max(big_speedups) >= 3.0
    # At 5000 transitions the compiled engine cannot even be built (CPython
    # recursion guard) while the NumPy engine keeps simulating — and the row
    # still carries a real speedup, measured against the labeled
    # reference-engine fallback baseline instead of an empty cell.
    assert rows[(5000, "compiled")]["interactions"] is None
    assert rows[(5000, "numpy")]["interactions"] > 0
    fallback_row = rows[(5000, "numpy")]
    assert fallback_row["baseline"].startswith("reference (extrapolated")
    assert fallback_row["speedup"] is not None
    assert fallback_row["speedup"] > 1.0

    _update_artifact(
        "large_net_throughput",
        {"title": table.title, "notes": table.notes, "rows": table.rows},
    )
    report(table)


def test_bench_e11_persistent_pool():
    # A moderately sized random net: per-worker initialization (protocol
    # unpickling + stepper codegen) is a real cost, which is exactly what the
    # persistent pool amortizes.  240 transitions sits under the auto
    # threshold, so workers pay the compiled engine's codegen.
    protocol, inputs = random_interaction_protocol(240, random.Random(5))
    repetitions, seed, max_steps = 64, 2022, 400
    kwargs = dict(seed=seed, max_steps=max_steps, stability_window=max_steps)

    serial_runner = BatchRunner(protocol, backend="serial")
    serial = serial_runner.run_many(inputs, repetitions, **kwargs)
    serial_runner.close()

    with BatchRunner(protocol, max_workers=2) as runner:
        first = runner.run_many(inputs, repetitions, **kwargs)
        start = time.perf_counter()
        second = runner.run_many(inputs, repetitions, **kwargs)
        warm_elapsed = time.perf_counter() - start

    # Build-per-call: what every ensemble paid before the persistent pool.
    start = time.perf_counter()
    fresh_runner = BatchRunner(protocol, max_workers=2)
    fresh = fresh_runner.run_many(inputs, repetitions, **kwargs)
    cold_elapsed = time.perf_counter() - start
    fresh_runner.close()

    # Pool reuse must not change results: persistent-pool, fresh-pool and
    # serial ensembles are bit-identical.
    assert first == second == fresh == serial

    speedup = cold_elapsed / warm_elapsed
    _update_artifact(
        "persistent_pool",
        {
            "protocol_transitions": protocol.petri_net.num_transitions,
            "repetitions": repetitions,
            "max_steps": max_steps,
            "warm_seconds": warm_elapsed,
            "cold_seconds": cold_elapsed,
            "speedup": speedup,
        },
    )
    print(
        f"\npersistent pool: warm {warm_elapsed * 1000:.1f} ms vs "
        f"build-per-call {cold_elapsed * 1000:.1f} ms ({speedup:.2f}x)"
    )
    assert speedup >= 1.5
