"""Benchmark E5 — Lemma 5.4: small-value certificates for stabilized configurations.

Regenerates the check that a stabilized configuration's certificate (its
restriction to the states below the Rackoff threshold) transfers stability to
every configuration below it, matching the exact backward-coverability test.
"""

from conftest import report

from repro.experiments import experiment_e5_stability


def test_bench_e5_stability(benchmark):
    table = benchmark(experiment_e5_stability)
    for row in table.rows:
        # Soundness of Lemma 5.4: every certified configuration is stabilized.
        assert row["certified"] == row["agreement"]
        assert 0 < row["certified"] <= row["checked"]
    report(table)
