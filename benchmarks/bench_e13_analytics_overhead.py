"""Benchmark E13 — bounded overhead of in-worker analytics extraction.

Runs a 64-repetition majority ensemble at population 1000 over a persistent
worker pool twice per round: once plain, once with the batch layer's
``analytics=`` knob (histogram + consensus-time extraction + correctness
scoring inside the workers).  Asserts the two contracts of the analytics
subsystem:

* **compactness** — analytics results come back with a metric dict and *no*
  trajectory: the full rings are recorded, consumed and dropped inside the
  workers, so what crosses the pool is orders of magnitude smaller than the
  rings a ``record_trajectory=True`` ensemble would ship;
* **bounded overhead** — the analytics ensemble costs at most 25% more wall
  clock than the plain one (best-of-N, interleaved so machine drift hits
  both sides equally).  The block-skip replay in
  :mod:`repro.analytics.metrics` is what makes this hold: consensus-free
  stretches of the trajectory are folded in C speed instead of stepped
  through one Python iteration at a time.
"""

import pickle
import time

from conftest import report

from repro.analytics import AnalyticsSpec
from repro.experiments.harness import ExperimentTable
from repro.simulation import BatchRunner
from repro.sweep.spec import build_protocol_and_inputs

POPULATION = 1000
REPETITIONS = 64
MAX_STEPS = 20000
ROUNDS = 3
MAX_OVERHEAD = 1.25


def _measure(runner, inputs, analytics):
    start = time.perf_counter()
    results = runner.run_many(
        inputs, REPETITIONS, seed=1, max_steps=MAX_STEPS, analytics=analytics
    )
    return time.perf_counter() - start, results


def run_overhead_experiment():
    protocol, inputs = build_protocol_and_inputs("majority", POPULATION, {})
    spec = AnalyticsSpec(expected_output=1)
    with BatchRunner(protocol, max_workers=4) as runner:
        runner.run_many(inputs, 8, seed=0, max_steps=MAX_STEPS)  # warm the pool
        plain_best = analytics_best = float("inf")
        plain_results = analytics_results = None
        for _ in range(ROUNDS):
            elapsed, plain_results = _measure(runner, inputs, None)
            plain_best = min(plain_best, elapsed)
            elapsed, analytics_results = _measure(runner, inputs, spec)
            analytics_best = min(analytics_best, elapsed)

    table = ExperimentTable(
        experiment_id="E13-overhead",
        title=f"in-worker analytics overhead ({REPETITIONS}-rep pooled ensemble)",
        columns=["mode", "best seconds", "overhead", "payload bytes/run"],
        notes=(
            "payload bytes = pickled size of what one repetition ships back "
            "through the pool; the analytics metric dict replaces (not adds "
            "to) the trajectory ring"
        ),
    )
    table.add_row(**{
        "mode": "plain",
        "best seconds": plain_best,
        "overhead": 1.0,
        "payload bytes/run": len(pickle.dumps(plain_results[0])),
    })
    table.add_row(**{
        "mode": "analytics",
        "best seconds": analytics_best,
        "overhead": analytics_best / plain_best,
        "payload bytes/run": len(pickle.dumps(analytics_results[0])),
    })
    return table, plain_results, analytics_results


def test_bench_e13_analytics_overhead(benchmark):
    table, plain_results, analytics_results = benchmark.pedantic(
        run_overhead_experiment, rounds=1, iterations=1
    )

    # Compactness: metrics instead of rings.
    assert all(r.analytics is not None for r in analytics_results)
    assert all(r.trajectory is None for r in analytics_results)
    metric_bytes = len(pickle.dumps(analytics_results[0].analytics))
    ring_bytes = len(
        pickle.dumps(tuple(range(min(MAX_STEPS, 65536))))
    )  # what a full ring of this budget would ship
    assert metric_bytes * 50 < ring_bytes, (
        f"metric dict ({metric_bytes}B) is not compact versus a trajectory "
        f"ring ({ring_bytes}B)"
    )

    # Analytics must not perturb the simulation itself.
    assert [(r.steps, r.consensus, r.consensus_step) for r in plain_results] == [
        (r.steps, r.consensus, r.consensus_step) for r in analytics_results
    ]

    # Bounded overhead.
    overhead = table.rows[1]["overhead"]
    assert overhead <= MAX_OVERHEAD, (
        f"in-worker analytics added {overhead:.2f}x overhead "
        f"(budget {MAX_OVERHEAD}x)"
    )
    report(table)
