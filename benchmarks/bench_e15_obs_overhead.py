"""Benchmark E15 — zero-cost observability when tracing is disabled.

The observability layer instruments the serial per-seed loop
(:meth:`Simulator._run_seeds`) with run spans and profiler records.  The
design keeps the disabled path structurally identical to the pre-obs code:
one predicate check per *ensemble* dispatches to an instrumented twin loop,
and the plain loop itself is untouched.  This benchmark pins that contract.

It replicates the plain compiled loop body locally (the exact code the
disabled path executes, minus the single dispatch branch) as the baseline,
then interleaves it against the real entry point with tracing and profiling
off.  Best-of-N on both sides, same machine, same buffers; the real entry
point may cost at most 2% more — the acceptance budget from the obs design.

A second round flips tracing ON (into an in-memory capture) to report —
not assert — the enabled cost, so EXPERIMENTS.md regenerations show what a
traced run pays.
"""

import random
import time

from conftest import report

from repro.experiments.harness import ExperimentTable
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.simulation import Simulator
from repro.sweep.spec import build_protocol_and_inputs

POPULATION = 300
REPETITIONS = 24
MAX_STEPS = 4000
STABILITY_WINDOW = 200
ROUNDS = 9
MAX_DISABLED_OVERHEAD = 1.02


def _baseline_loop(simulator, configuration, seeds):
    """The pre-obs serial compiled loop, replicated verbatim."""
    buffer = simulator._compiled.counts_of(configuration)
    results = []
    for seed in seeds:
        run_rng = random.Random(seed)
        counts = simulator._compiled.counts_of(configuration, out=buffer)
        results.append(
            simulator._run_compiled(
                configuration, counts, MAX_STEPS, STABILITY_WINDOW, run_rng,
                False, 1024,
            )
        )
    return results


def _instrumented_entry(simulator, configuration, seeds):
    return simulator._run_seeds(
        configuration, seeds, MAX_STEPS, STABILITY_WINDOW
    )


def run_overhead_experiment():
    protocol, inputs = build_protocol_and_inputs("majority", POPULATION, {})
    simulator = Simulator(protocol, seed=7)
    configuration = protocol.initial_configuration(inputs)
    assert simulator._stepper is not None, "compiled engine required for E15"
    assert not obs_trace.tracing_active()
    assert obs_profile.active_profiler() is None
    seeds = [random.Random(2022).getrandbits(64) for _ in range(REPETITIONS)]

    # Warm both paths (JIT-free, but touches allocators and branch caches).
    _baseline_loop(simulator, configuration, seeds)
    _instrumented_entry(simulator, configuration, seeds)

    baseline_best = entry_best = float("inf")
    baseline_results = entry_results = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        baseline_results = _baseline_loop(simulator, configuration, seeds)
        baseline_best = min(baseline_best, time.perf_counter() - start)
        start = time.perf_counter()
        entry_results = _instrumented_entry(simulator, configuration, seeds)
        entry_best = min(entry_best, time.perf_counter() - start)

    # Enabled cost, reported for context: divert spans into a buffer so the
    # measurement excludes disk.
    with obs_trace.capture_events():
        start = time.perf_counter()
        _instrumented_entry(simulator, configuration, seeds)
        traced_seconds = time.perf_counter() - start

    table = ExperimentTable(
        experiment_id="E15-obs-overhead",
        title=f"obs overhead, {REPETITIONS}-rep compiled serial ensemble",
        columns=["mode", "best seconds", "overhead"],
        notes=(
            "baseline replicates the pre-obs loop body; 'disabled' is the "
            "real _run_seeds entry with no tracer/profiler installed "
            f"(budget {MAX_DISABLED_OVERHEAD}x); 'traced' captures spans "
            "in memory and is informational"
        ),
    )
    table.add_row(mode="baseline", **{"best seconds": baseline_best,
                                      "overhead": 1.0})
    table.add_row(mode="disabled", **{"best seconds": entry_best,
                                      "overhead": entry_best / baseline_best})
    table.add_row(mode="traced", **{"best seconds": traced_seconds,
                                    "overhead": traced_seconds / baseline_best})
    return table, baseline_results, entry_results


def test_bench_e15_obs_overhead(benchmark):
    table, baseline_results, entry_results = benchmark.pedantic(
        run_overhead_experiment, rounds=1, iterations=1
    )

    # Instrumentation must not perturb the simulation: identical results.
    assert entry_results == baseline_results

    overhead = table.rows[1]["overhead"]
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled observability added {overhead:.3f}x overhead "
        f"(budget {MAX_DISABLED_OVERHEAD}x)"
    )
    report(table)
