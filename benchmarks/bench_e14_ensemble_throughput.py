"""Benchmark E14 — lock-step ensemble throughput vs per-run NumPy loops.

Measures the claim the ensemble engine exists for: advancing a whole seed
list as one ``(reps, states)`` array program with blocked ``O(sqrt(|T|))``
weight selection beats ``reps`` independent per-run NumPy step loops, and
the gap *grows* with the transition count (the per-run engine pays a flat
``O(|T|)`` cumsum per step).  The sweep
(:func:`experiment_e14_ensemble_throughput`) runs the same derived
per-repetition seeds through both engines and raises unless every ensemble
row is bit-identical to its per-run counterpart, so the benchmark doubles
as an equivalence check.

Asserted shape, at ``reps >= 64`` on the seeded E11 random nets:

* the ensemble already wins at 1000 transitions (speedup > 1),
* the speedup at 50000 transitions exceeds the one at 1000 (the
  ``O(sqrt(|T|))`` vs ``O(|T|)`` scaling is visible in the data),
* headline: >= 10x at 50000 transitions.

Data points land in ``BENCH_e14.json`` at the repository root so the
ensemble's performance trajectory is recorded across PRs.  Requires NumPy
(the ``sim`` extra); skipped without it.
"""

import json
from pathlib import Path

import pytest

pytest.importorskip("numpy", reason="benchmark E14 measures the ensemble engine")

from conftest import report

from repro.experiments import experiment_e14_ensemble_throughput

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_e14.json"


def test_bench_e14_ensemble_throughput(benchmark):
    table = benchmark.pedantic(
        experiment_e14_ensemble_throughput, rounds=1, iterations=1
    )
    rows = {
        (row["transitions"], row["reps"], row["engine"]): row
        for row in table.rows
    }

    # The ensemble wins from the small end of the sweep onwards...
    assert rows[(1000, 64, "ensemble")]["speedup"] > 1.0
    # ...the advantage grows with the transition count (O(sqrt|T|) per
    # row-step vs the per-run engine's O(|T|))...
    assert (
        rows[(50000, 64, "ensemble")]["speedup"]
        > rows[(1000, 64, "ensemble")]["speedup"]
    )
    # ...and the headline acceptance row: >= 10x at reps >= 64 on a
    # multi-thousand-transition net.  Isolated measurements put both rep
    # counts at 11-13x; the 128-rep row gets a softer floor because its
    # ~12 s per-run baseline is the sweep's most timing-noise-exposed.
    assert rows[(50000, 64, "ensemble")]["speedup"] >= 10.0
    assert rows[(50000, 128, "ensemble")]["speedup"] >= 5.0

    payload = {
        "title": table.title,
        "notes": table.notes,
        "rows": table.rows,
    }
    ARTIFACT_PATH.write_text(
        json.dumps({"ensemble_throughput": payload}, indent=2, sort_keys=True)
        + "\n"
    )
    report(table)
