"""Benchmark E2 — Theorem 4.3: the largest threshold decidable with |P| states.

Regenerates the doubly-exponential upper-bound curve of Theorem 4.3 (on a
log-log scale) for several width/leader bounds ``m``.
"""

from conftest import report

from repro.experiments import experiment_e2_theorem_4_3


def test_bench_e2_theorem_4_3_bound(benchmark):
    table = benchmark(experiment_e2_theorem_4_3)
    for m in (1, 2, 4):
        values = table.column(f"log2 log2 bound (m={m})")
        # The log-log of the bound is increasing in |P| (doubly exponential growth).
        assert all(a <= b for a, b in zip(values, values[1:]))
    # And increasing in m for a fixed |P|.
    last_row = table.rows[-1]
    assert (
        last_row["log2 log2 bound (m=1)"]
        <= last_row["log2 log2 bound (m=2)"]
        <= last_row["log2 log2 bound (m=4)"]
    )
    report(table)
