"""Benchmark E8 — exhaustive stable-computation verification of every construction.

Regenerates the correctness table: every protocol the state-count experiment
compares (classic, the paper's Examples 4.1/4.2, the succinct construction)
actually stably computes its counting predicate on bounded populations.
"""

from conftest import report

from repro.experiments import experiment_e8_verification


def test_bench_e8_verification(benchmark):
    table = benchmark.pedantic(experiment_e8_verification, rounds=1, iterations=1)
    assert all(row["failures"] == 0 for row in table.rows)
    assert all(row["inputs"] > 0 for row in table.rows)
    report(table)
