"""Benchmark E6 — Theorem 6.1: reaching bottom configurations with short words.

Regenerates the bottom-configuration witness search on the restricted
Example 4.2 net (the way Section 8 applies the theorem) and compares the
measured witness sizes against the doubly-exponential bound ``b``.
"""

from conftest import report

from repro.experiments import experiment_e6_bottom


def test_bench_e6_bottom(benchmark):
    table = benchmark.pedantic(
        experiment_e6_bottom, kwargs={"leader_counts": (1, 2)}, rounds=1, iterations=1
    )
    for row in table.rows:
        # A witness was found and its measured sizes are tiny next to b.
        assert row["|sigma|"] >= 0
        assert row["component size"] >= 1
        assert row["|sigma|"] + row["|w|"] + row["component size"] < row["log2 bound b"]
    report(table)
