"""Shared fixtures for the benchmark suite.

Every benchmark wraps one experiment runner (E1..E8, see DESIGN.md) with
pytest-benchmark, checks the shape assertions that correspond to the paper's
claims, and prints the resulting table so that a benchmark run doubles as a
regeneration of the EXPERIMENTS.md data.
"""

import pytest


def report(table):
    """Print an experiment table below the benchmark output."""
    print()
    print(table.render())
