"""Benchmark E4 — Rackoff's coverability bound (Lemma 5.3) vs measured witnesses.

Regenerates the comparison between the doubly-exponential Rackoff bound and
the length of actual shortest covering words on the paper's nets.
"""

import math

from conftest import report

from repro.experiments import experiment_e4_rackoff


def test_bench_e4_rackoff(benchmark):
    table = benchmark(experiment_e4_rackoff)
    for row in table.rows:
        # Every instance is coverable and the witness respects the bound.
        assert row["measured length"] >= 0
        assert math.log2(max(row["measured length"], 1)) <= row["log2 Rackoff bound"]
    report(table)
